package dnsserver

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/telemetry"
	"sendervalid/internal/trace"
)

// Query is a parsed, attributed query handed to a Responder.
type Query struct {
	// Name is the canonical query name.
	Name string
	// Type is the query type.
	Type dns.Type
	// TestID and MTAID are the identifying labels (paper §4.4).
	TestID string
	MTAID  string
	// Rest holds labels left of the test label, leftmost first.
	Rest []string
	// Transport is "udp" or "tcp".
	Transport string
	// OverIPv6 reports whether the query arrived at the server's IPv6
	// endpoint.
	OverIPv6 bool
}

// Response is a Responder's synthesized answer plus shaping directives.
type Response struct {
	// Records go in the answer section.
	Records []dns.RR
	// RCode overrides NOERROR when non-zero.
	RCode dns.RCode
	// Delay is slept before the response is written, implementing the
	// paper's 100 ms / 800 ms response shaping (§7.1, §7.2).
	Delay time.Duration
	// TruncateUDP forces a truncated empty response over UDP, eliciting
	// a TCP retry (the paper's TCP test policy, §7.3).
	TruncateUDP bool
	// RequireIPv6 refuses the query unless it arrived over IPv6 (the
	// paper's IPv6-only test policy, §7.3).
	RequireIPv6 bool
	// Drop suppresses any response, simulating an unreachable server.
	Drop bool
}

// Responder synthesizes the response for one attributed query.
type Responder interface {
	Respond(q *Query) Response
}

// ResponderFunc adapts a function to the Responder interface.
type ResponderFunc func(q *Query) Response

// Respond calls f(q).
func (f ResponderFunc) Respond(q *Query) Response { return f(q) }

// Zone is an authoritative suffix served synthetically.
type Zone struct {
	// Suffix is the zone apex, e.g. "spf-test.dns-lab.example.".
	Suffix string
	// Contact is the responsible-party address published in the SOA
	// RNAME field for experiment attribution (paper §5.3), in DNS
	// name form ("hostmaster.example.com." for hostmaster@example.com).
	Contact string
	// Responders maps a test-policy label (e.g. "t01") to the
	// responder that synthesizes answers for names carrying it.
	Responders map[string]Responder
	// Default answers queries whose test label has no dedicated
	// responder (and apex queries). Optional.
	Default Responder
	// LabelDepth is the number of identifying labels directly under
	// the suffix: 2 for <testid>.<mtaid>.<suffix> (NotifyMX and
	// TwoWeekMX), 1 for <domainid>.<suffix> (NotifyEmail). Default 2.
	LabelDepth int
	// NoLog excludes this zone's queries from the server's query log.
	// Infrastructure zones (e.g. the simulated recipient-domain MX
	// records) would otherwise pollute the measurement signal with
	// meaningless attribution labels.
	NoLog bool

	// compileOnce guards the precomputed fields below, derived once (at
	// Server.Start, or lazily on first use) so the per-query path never
	// re-canonicalizes the suffix or re-derives the label depth.
	compileOnce sync.Once
	suffix      string // canonical Suffix
	depth       int    // effective LabelDepth
}

// compile precomputes the zone's canonical suffix and effective depth.
func (z *Zone) compile() {
	z.compileOnce.Do(func() {
		z.suffix = dns.CanonicalName(z.Suffix)
		z.depth = z.LabelDepth
		if z.depth == 0 {
			z.depth = 2
		}
	})
}

// matchesSuffix reports whether the canonical name lies under the
// compiled zone suffix, without allocating.
func (z *Zone) matchesSuffix(name string) bool {
	if z.suffix == "." {
		return true
	}
	if len(name) == len(z.suffix) {
		return name == z.suffix
	}
	return len(name) > len(z.suffix) && strings.HasSuffix(name, z.suffix) &&
		name[len(name)-len(z.suffix)-1] == '.'
}

// parse attributes a query name within the zone. ok is false when the
// name is not under the zone suffix. For the common attributed shapes
// (<testid>.<mtaid>.<suffix> and <domainid>.<suffix>) it performs no
// allocations beyond the Query itself: the identifying labels are
// substrings of name, and Rest stays nil unless extra labels exist.
func (z *Zone) parse(name string, qtype dns.Type, transport string, v6 bool) (*Query, bool) {
	name = dns.CanonicalName(name)
	z.compile()
	if !z.matchesSuffix(name) {
		return nil, false
	}
	q := &Query{Name: name, Type: qtype, Transport: transport, OverIPv6: v6}
	sub := name[:len(name)-len(z.suffix)]
	sub = strings.TrimSuffix(sub, ".")
	if sub == "" {
		return q, true // apex
	}
	last := strings.LastIndexByte(sub, '.')
	q.MTAID = sub[last+1:]
	rest := ""
	if last >= 0 {
		rest = sub[:last]
	}
	if z.depth >= 2 && rest != "" {
		if i := strings.LastIndexByte(rest, '.'); i >= 0 {
			q.TestID = rest[i+1:]
			rest = rest[:i]
		} else {
			q.TestID = rest
			rest = ""
		}
	}
	if rest != "" {
		q.Rest = strings.Split(rest, ".")
	}
	return q, true
}

// responderFor selects the responder for an attributed query: two-label
// zones key on the test-policy label, while single-identifier zones key
// on the first rest label when present, otherwise the domain id itself.
func (z *Zone) responderFor(q *Query) Responder {
	key := q.TestID
	if z.depth == 1 {
		if len(q.Rest) > 0 {
			key = q.Rest[0]
		} else {
			key = q.MTAID
		}
	}
	if key != "" {
		if r, ok := z.Responders[key]; ok {
			return r
		}
	}
	return z.Default
}

// Server is the synthesizing authoritative server. It binds an IPv4
// and (optionally) an IPv6 endpoint, serves the configured zones, and
// records every query in its log.
type Server struct {
	// Zones are served authoritatively. Longest-suffix match wins.
	Zones []*Zone
	// Addr4 and Addr6 are the listen addresses. Addr4 defaults to
	// "127.0.0.1:0"; Addr6 is optional ("[::1]:0" to enable).
	Addr4 string
	Addr6 string
	// TTL is the answer TTL. Defaults to 60.
	TTL uint32
	// Log records every query: a *QueryLog for in-memory collection,
	// or an *AsyncLog wrapping a disk sink so logging backpressure can
	// never stall query serving. A nil log disables recording.
	Log Sink
	// MaxQPSPerSource and BurstPerSource configure the underlying
	// endpoints' per-source rate limiting (REFUSED over budget); zero
	// disables it.
	MaxQPSPerSource float64
	BurstPerSource  int
	// Logf receives diagnostics (recovered responder panics). Nil
	// discards them.
	Logf func(format string, args ...any)
	// Tracer, when non-nil, is handed to both transport endpoints so
	// each served query gets a "dns.serve" root span; the handler
	// annotates it with the (testid, mtaid) attribution.
	Tracer *trace.Tracer

	srv4 *dns.Server
	srv6 *dns.Server

	// initOnce guards ordered: the zones compiled and sorted
	// longest-suffix-first at Start, so the per-query zoneFor walk is a
	// first-match scan with no canonicalization or length bookkeeping.
	initOnce sync.Once
	ordered  []*Zone

	metrics serverMetrics
	panics  telemetry.Counter
}

// init compiles every zone and orders them longest-suffix-first, and
// creates the always-on instruments the handler increments.
func (s *Server) init() {
	s.initOnce.Do(func() {
		s.ordered = make([]*Zone, len(s.Zones))
		copy(s.ordered, s.Zones)
		for _, z := range s.ordered {
			z.compile()
		}
		sort.SliceStable(s.ordered, func(i, j int) bool {
			return len(s.ordered[i].suffix) > len(s.ordered[j].suffix)
		})
		s.metrics.init()
	})
}

// Start binds the endpoints and begins serving. It returns the bound
// IPv4 address; Addr6Bound exposes the IPv6 one.
func (s *Server) Start() (net.Addr, error) {
	s.init()
	addr4 := s.Addr4
	if addr4 == "" {
		addr4 = "127.0.0.1:0"
	}
	s.srv4 = s.endpoint(addr4, false)
	bound, err := s.srv4.Start()
	if err != nil {
		return nil, err
	}
	if s.Addr6 != "" {
		s.srv6 = s.endpoint(s.Addr6, true)
		if _, err := s.srv6.Start(); err != nil {
			_ = s.srv4.Shutdown(context.Background())
			return nil, err
		}
	}
	return bound, nil
}

// endpoint builds one transport endpoint with the server's hardening
// configuration applied.
func (s *Server) endpoint(addr string, v6 bool) *dns.Server {
	return &dns.Server{
		Addr:            addr,
		Handler:         s.handler(v6),
		MaxQPSPerSource: s.MaxQPSPerSource,
		BurstPerSource:  s.BurstPerSource,
		Logf:            s.Logf,
		Tracer:          s.Tracer,
	}
}

// Panics returns the number of responder panics recovered into
// SERVFAIL answers since Start, summed with the endpoints' own
// recovered handler panics.
func (s *Server) Panics() uint64 {
	n := s.panics.Value()
	if s.srv4 != nil {
		n += s.srv4.Panics()
	}
	if s.srv6 != nil {
		n += s.srv6.Panics()
	}
	return n
}

// Refused returns the number of rate-limited queries across endpoints.
func (s *Server) Refused() uint64 {
	var n uint64
	if s.srv4 != nil {
		n += s.srv4.Refused()
	}
	if s.srv6 != nil {
		n += s.srv6.Refused()
	}
	return n
}

// Addr returns the bound IPv4 endpoint, or nil before Start.
func (s *Server) Addr() net.Addr {
	if s.srv4 == nil {
		return nil
	}
	return s.srv4.LocalAddr()
}

// Addr6Bound returns the bound IPv6 endpoint, or nil when disabled.
func (s *Server) Addr6Bound() net.Addr {
	if s.srv6 == nil {
		return nil
	}
	return s.srv6.LocalAddr()
}

// Shutdown stops both endpoints.
func (s *Server) Shutdown(ctx context.Context) error {
	var first error
	if s.srv4 != nil {
		first = s.srv4.Shutdown(ctx)
	}
	if s.srv6 != nil {
		if err := s.srv6.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Server) ttl() uint32 {
	if s.TTL == 0 {
		return 60
	}
	return s.TTL
}

// zoneFor returns the longest-suffix zone containing the canonical
// name. The ordered index makes this a first-match scan.
func (s *Server) zoneFor(name string) *Zone {
	s.init()
	for _, z := range s.ordered {
		if z.matchesSuffix(name) {
			return z
		}
	}
	return nil
}

func (s *Server) handler(v6 bool) dns.Handler {
	return dns.HandlerFunc(func(w dns.ResponseWriter, r *dns.Request) {
		// r.Msg is pooled by the transport endpoint: everything the
		// handler keeps past this call (names, attribution labels) is
		// extracted here, never retained as references into r.Msg.
		question := r.Msg.Question()
		name := dns.CanonicalName(question.Name)
		zone := s.zoneFor(name)
		if zone == nil {
			s.metrics.zoneMiss.Inc()
			resp := dns.GetMsg().SetReply(r.Msg)
			defer dns.PutMsg(resp)
			resp.RCode = dns.RCodeRefused
			_ = w.WriteMsg(resp)
			return
		}
		q, _ := zone.parse(name, question.Type, r.Transport, v6)
		s.metrics.queries.With(policyLabel(q.TestID)).Inc()
		if sp := r.Span; sp != nil {
			sp.SetAttr("name", q.Name)
			sp.SetAttr("type", q.Type.String())
			if q.TestID != "" {
				sp.SetAttr("test", q.TestID)
			}
			if q.MTAID != "" {
				sp.SetAttr("mta", q.MTAID)
			}
		}

		if s.Log != nil && !zone.NoLog {
			s.Log.Append(LogEntry{
				Time:      r.Received,
				Name:      q.Name,
				Type:      q.Type,
				TestID:    q.TestID,
				MTAID:     q.MTAID,
				Rest:      q.Rest,
				Transport: r.Transport,
				OverIPv6:  v6,
				Remote:    r.RemoteString(),
			})
		}

		resp := dns.GetMsg().SetReply(r.Msg)
		defer dns.PutMsg(resp)
		resp.Authoritative = true

		// Built-in apex records: SOA and the attribution contact.
		if q.Name == zone.suffix && (q.Type == dns.TypeSOA || q.Type == dns.TypeANY) {
			resp.Answers = append(resp.Answers, s.soa(zone))
			_ = w.WriteMsg(resp)
			return
		}

		responder := zone.responderFor(q)
		if responder == nil {
			resp.RCode = dns.RCodeNameError
			resp.Authority = append(resp.Authority, s.soa(zone))
			_ = w.WriteMsg(resp)
			return
		}

		shaped := s.respond(responder, q)
		if shaped.Drop {
			return
		}
		if shaped.Delay > 0 {
			time.Sleep(shaped.Delay)
		}
		if shaped.RequireIPv6 && !v6 {
			resp.RCode = dns.RCodeRefused
			_ = w.WriteMsg(resp)
			return
		}
		if shaped.TruncateUDP && r.Transport == "udp" {
			resp.Truncated = true
			_ = w.WriteMsg(resp)
			return
		}
		resp.RCode = shaped.RCode
		resp.Answers = shaped.Records
		if len(resp.Answers) == 0 && resp.RCode == dns.RCodeSuccess {
			// Negative answer: include the SOA per RFC 2308.
			resp.Authority = append(resp.Authority, s.soa(zone))
		}
		_ = w.WriteMsg(resp)
	})
}

// respond invokes the responder, recovering a panic into a SERVFAIL
// answer so one malformed or adversarial query name cannot kill the
// authoritative server mid-sweep. The panic is logged with the query's
// (testid, mtaid) attribution so the offending input is recoverable
// from the diagnostics alone.
func (s *Server) respond(responder Responder, q *Query) (shaped Response) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Inc()
			if s.Logf != nil {
				s.Logf("dnsserver: responder panic on %s: %v", q, v)
			}
			shaped = Response{RCode: dns.RCodeServerFailure}
		}
	}()
	return responder.Respond(q)
}

func (s *Server) soa(z *Zone) dns.RR {
	contact := z.Contact
	if contact == "" {
		contact = prefixName("hostmaster", z.Suffix)
	}
	return dns.RR{
		Name: dns.CanonicalName(z.Suffix), Type: dns.TypeSOA, Class: dns.ClassINET,
		TTL: s.ttl(),
		Data: &dns.SOA{
			MName: prefixName("ns1", z.Suffix), RName: dns.CanonicalName(contact),
			Serial: 2021100401, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		},
	}
}

// prefixName joins a label onto a zone suffix, handling the root zone
// (where naive concatenation would produce an empty label).
func prefixName(label, suffix string) string {
	suffix = dns.CanonicalName(suffix)
	if suffix == "." {
		return label + "."
	}
	return label + "." + suffix
}

// TXTRecord builds a TXT resource record for name, splitting long
// payloads into 255-octet character-strings.
func TXTRecord(name, payload string, ttl uint32) dns.RR {
	return dns.RR{
		Name: dns.CanonicalName(name), Type: dns.TypeTXT, Class: dns.ClassINET, TTL: ttl,
		Data: &dns.TXT{Strings: dns.SplitTXT(payload)},
	}
}

// Rejoin reassembles a Query's identifying labels into the name that
// carries them, for building follow-up names in synthesized policies:
// Rejoin(q, suffix, "l1") prepends "l1" to the (testid, mtaid) base
// name.
func Rejoin(q *Query, suffix string, extra ...string) string {
	labels := append([]string(nil), extra...)
	if q.TestID != "" {
		labels = append(labels, q.TestID)
	}
	if q.MTAID != "" {
		labels = append(labels, q.MTAID)
	}
	base := strings.Join(labels, ".")
	if base == "" {
		return dns.CanonicalName(suffix)
	}
	return dns.CanonicalName(base + "." + dns.CanonicalName(suffix))
}

// FormatContact converts a mailbox ("hostmaster@example.com") to SOA
// RNAME form ("hostmaster.example.com.").
func FormatContact(mailbox string) string {
	local, domain, ok := strings.Cut(mailbox, "@")
	if !ok {
		return dns.CanonicalName(mailbox)
	}
	return dns.CanonicalName(strings.ReplaceAll(local, ".", "\\.") + "." + domain)
}

// String renders a Query for diagnostics.
func (q *Query) String() string {
	return fmt.Sprintf("%s %s test=%s mta=%s rest=%v via %s",
		q.Name, q.Type, q.TestID, q.MTAID, q.Rest, q.Transport)
}
