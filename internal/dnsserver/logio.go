package dnsserver

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"sendervalid/internal/dns"
)

// logRecord is the JSON-lines wire form of a LogEntry. The study's
// workflow separates collection from analysis: the authoritative
// server writes its query log to disk, and the analyses run offline
// over the file (possibly repeatedly, as new questions arise).
type logRecord struct {
	Time      time.Time `json:"t"`
	Name      string    `json:"name"`
	Type      string    `json:"type"`
	TestID    string    `json:"test,omitempty"`
	MTAID     string    `json:"mta,omitempty"`
	Rest      []string  `json:"rest,omitempty"`
	Transport string    `json:"via,omitempty"`
	OverIPv6  bool      `json:"v6,omitempty"`
	Remote    string    `json:"remote,omitempty"`
}

// typeByName inverts the Type mnemonics used in the log files.
var typeByName = map[string]dns.Type{
	"A": dns.TypeA, "NS": dns.TypeNS, "CNAME": dns.TypeCNAME,
	"SOA": dns.TypeSOA, "PTR": dns.TypePTR, "MX": dns.TypeMX,
	"TXT": dns.TypeTXT, "AAAA": dns.TypeAAAA, "OPT": dns.TypeOPT,
	"SPF": dns.TypeSPF, "ANY": dns.TypeANY,
}

// WriteJSON streams the log's entries as JSON lines.
func (l *QueryLog) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range l.Entries() {
		rec := logRecord{
			Time: e.Time, Name: e.Name, Type: e.Type.String(),
			TestID: e.TestID, MTAID: e.MTAID, Rest: e.Rest,
			Transport: e.Transport, OverIPv6: e.OverIPv6, Remote: e.Remote,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("dnsserver: writing log: %w", err)
		}
	}
	return bw.Flush()
}

// ForEachLogJSON streams a JSON-lines query log, calling fn once per
// entry in file order. It decodes one record at a time, so a
// multi-gigabyte collection log can be analyzed without holding the
// whole run in memory. A non-nil error from fn stops the scan and is
// returned unwrapped.
func ForEachLogJSON(r io.Reader, fn func(LogEntry) error) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	for n := 0; dec.More(); n++ {
		var rec logRecord
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("dnsserver: reading log entry %d: %w", n, err)
		}
		t, ok := typeByName[rec.Type]
		if !ok {
			var v uint16
			if _, err := fmt.Sscanf(rec.Type, "TYPE%d", &v); err != nil {
				return fmt.Errorf("dnsserver: log entry %d: unknown type %q", n, rec.Type)
			}
			t = dns.Type(v)
		}
		e := LogEntry{
			Time: rec.Time, Name: rec.Name, Type: t,
			TestID: rec.TestID, MTAID: rec.MTAID, Rest: rec.Rest,
			Transport: rec.Transport, OverIPv6: rec.OverIPv6, Remote: rec.Remote,
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadLogJSON parses a JSON-lines query log into memory.
func ReadLogJSON(r io.Reader) ([]LogEntry, error) {
	var out []LogEntry
	err := ForEachLogJSON(r, func(e LogEntry) error {
		out = append(out, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
