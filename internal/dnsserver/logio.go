package dnsserver

import (
	"bufio"
	"fmt"
	"io"
)

// This file is the serial half of the log's disk I/O. The study's
// workflow separates collection from analysis: the authoritative
// server writes its query log to disk as JSON lines, and the analyses
// run offline over the file (possibly repeatedly, as new questions
// arise). The wire format and the per-record codec live in
// logcodec.go; the parallel ingest pipeline lives in parlog.go.

// WriteJSON streams the log's entries as JSON lines through the
// reflection-free encoder. It iterates under the log's lock instead
// of snapshotting, so streaming a large in-memory log does not double
// resident memory; concurrent Appends block until the write
// completes, which is the right trade for the collect-then-persist
// workflow (persist after the run, or behind an AsyncLog).
func (l *QueryLog) WriteJSON(w io.Writer) error {
	// Encode straight into one accumulation buffer flushed in large
	// writes — records never pass through an intermediate bufio copy.
	buf := make([]byte, 0, 64*1024)
	var werr error
	l.forEach(func(e *LogEntry) bool {
		buf = AppendLogJSON(buf, *e)
		if len(buf) >= 32*1024 {
			if _, err := w.Write(buf); err != nil {
				werr = err
				return false
			}
			buf = buf[:0]
		}
		return true
	})
	if werr == nil && len(buf) > 0 {
		_, werr = w.Write(buf)
	}
	if werr != nil {
		return fmt.Errorf("dnsserver: writing log: %w", werr)
	}
	return nil
}

// ForEachLogJSON streams a JSON-lines query log, calling fn once per
// record in file order. It decodes one line at a time with the
// reflection-free codec, so a multi-gigabyte collection log can be
// analyzed without holding the whole run in memory. Blank lines are
// skipped. A non-nil error from fn stops the scan and is returned
// unwrapped. For multi-core ingest over large logs see
// ParForEachLogJSON.
func ForEachLogJSON(r io.Reader, fn func(LogEntry) error) error {
	var p logLineParser
	br := bufio.NewReaderSize(r, 64*1024)
	var spill []byte
	n := 0
	for {
		line, rerr := br.ReadSlice('\n')
		if rerr == bufio.ErrBufferFull {
			// A line longer than the read buffer: accumulate it.
			spill = append(spill[:0], line...)
			for rerr == bufio.ErrBufferFull {
				line, rerr = br.ReadSlice('\n')
				spill = append(spill, line...)
			}
			line = spill
		}
		if rerr != nil && rerr != io.EOF {
			return fmt.Errorf("dnsserver: reading log: %w", rerr)
		}
		if !blankLine(line) {
			e, err := p.parse(line)
			if err != nil {
				return fmt.Errorf("dnsserver: reading log entry %d: %w", n, err)
			}
			if err := fn(e); err != nil {
				return err
			}
			n++
		}
		if rerr == io.EOF {
			return nil
		}
	}
}

// blankLine reports whether the line holds only JSON whitespace.
func blankLine(b []byte) bool {
	for _, c := range b {
		switch c {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// ReadLogJSON parses a JSON-lines query log into memory.
func ReadLogJSON(r io.Reader) ([]LogEntry, error) {
	var out []LogEntry
	err := ForEachLogJSON(r, func(e LogEntry) error {
		out = append(out, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
