package dnsserver

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/wal"
)

// logEntriesFor synthesizes n distinct query-log entries.
func logEntriesFor(n int) []LogEntry {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	out := make([]LogEntry, n)
	for i := range out {
		out[i] = LogEntry{
			Time:      base.Add(time.Duration(i) * time.Millisecond),
			Name:      fmt.Sprintf("l%d.t%02d.m%03d.spf-test.example.", i%3, i%7, i),
			Type:      dns.TypeTXT,
			TestID:    fmt.Sprintf("t%02d", i%7),
			MTAID:     fmt.Sprintf("m%03d", i),
			Transport: "udp",
			Remote:    "192.0.2.53:5353",
		}
		if i%5 == 0 {
			out[i].Rest = []string{"l1"}
			out[i].OverIPv6 = true
		}
	}
	return out
}

func TestWALSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.wal")
	sink, err := NewWALSink(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := logEntriesFor(50)
	for _, e := range want {
		sink.Append(e)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	ls, err := OpenLogStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	got, err := ReadLogJSON(ls)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch: got %d entries, want %d", len(got), len(want))
	}
	if st := ls.Stats(); st.Truncated || st.DroppedBytes != 0 {
		t.Fatalf("clean log reported damage: %+v", st)
	}
	if ls.Framed() != 1 {
		t.Fatalf("framed segments = %d, want 1", ls.Framed())
	}
}

func TestOpenLogStreamPlainFile(t *testing.T) {
	// A pre-WAL plain JSONL log reads through the same stream.
	path := filepath.Join(t.TempDir(), "queries.jsonl")
	want := logEntriesFor(20)
	var buf bytes.Buffer
	ws := NewWriterSink(&buf)
	for _, e := range want {
		ws.Append(e)
	}
	if err := ws.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	ls, err := OpenLogStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	got, err := ReadLogJSON(ls)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("plain stream mismatch: got %d entries, want %d", len(got), len(want))
	}
	if ls.Framed() != 0 {
		t.Fatalf("plain file counted as framed")
	}
}

// TestAnalyzeIngestRotatedEqualsPlain is the satellite-3 equality
// proof: the analyzer's parallel ordered ingest over a WAL log rotated
// into many segments yields exactly the entry sequence of the same
// log written as one plain JSONL file.
func TestAnalyzeIngestRotatedEqualsPlain(t *testing.T) {
	want := logEntriesFor(400)

	// Plain, unrotated reference.
	var plain bytes.Buffer
	ws := NewWriterSink(&plain)
	for _, e := range want {
		ws.Append(e)
	}
	if err := ws.Flush(); err != nil {
		t.Fatal(err)
	}

	// Same entries through a WALSink rotating aggressively.
	path := filepath.Join(t.TempDir(), "queries.wal")
	sink, err := NewWALSink(path, wal.Options{RotateBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range want {
		sink.Append(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.Segments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected heavy rotation, got %d segment(s)", len(segs))
	}

	ingest := func(r io.Reader) []LogEntry {
		t.Helper()
		var mu sync.Mutex
		var out []LogEntry
		if err := ParForEachLogJSONOrdered(r, 4, func(e LogEntry) error {
			mu.Lock()
			out = append(out, e)
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	ref := ingest(&plain)
	ls, err := OpenLogStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	rotated := ingest(ls)

	if !reflect.DeepEqual(rotated, ref) {
		t.Fatalf("rotated ingest diverges from plain: %d vs %d entries", len(rotated), len(ref))
	}
	if ls.Framed() != len(segs) {
		t.Fatalf("framed = %d, want %d", ls.Framed(), len(segs))
	}
}

func TestOpenLogStreamTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.wal")
	sink, err := NewWALSink(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := logEntriesFor(30)
	for _, e := range want {
		sink.Append(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final frame mid-payload.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, img[:len(img)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	ls, err := OpenLogStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	got, err := ReadLogJSON(ls)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)-1 {
		t.Fatalf("salvaged %d entries, want %d", len(got), len(want)-1)
	}
	if !reflect.DeepEqual(got, want[:len(want)-1]) {
		t.Fatal("salvaged prefix diverges from original entries")
	}
	st := ls.Stats()
	if !st.Truncated || st.DroppedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", st)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := &QueryLog{}, &QueryLog{}
	m := MultiSink{a, b}
	want := logEntriesFor(5)
	for _, e := range want {
		m.Append(e)
	}
	if !reflect.DeepEqual(a.Entries(), want) || !reflect.DeepEqual(b.Entries(), want) {
		t.Fatal("MultiSink did not deliver to every sink")
	}
}
