package dnsserver

import (
	"sendervalid/internal/telemetry"
)

// serverMetrics are the synthesizing server's always-on instruments.
// They sit above the transport endpoints (which carry their own
// dns_* families): attribution-level counts the transport cannot see.
type serverMetrics struct {
	// queries counts attributed queries by test-policy label. The
	// label comes off the wire (any probe can mint one), so the family
	// is cardinality-bounded: the catalog's 39 policies plus apex and
	// infrastructure labels fit, and junk beyond the bound lands in
	// the overflow child.
	queries *telemetry.CounterVec
	// zoneMiss counts queries refused for matching no served zone.
	zoneMiss telemetry.Counter
}

const maxPolicySeries = 128

// noPolicyLabel attributes apex and other unlabeled in-zone queries.
const noPolicyLabel = "none"

func (m *serverMetrics) init() {
	m.queries = telemetry.NewCounterVec(maxPolicySeries)
}

func policyLabel(testID string) string {
	if testID == "" {
		return noPolicyLabel
	}
	return testID
}

// RegisterMetrics publishes the server's families: the per-policy
// query counts and responder panic recoveries under dnsserver_, and
// each transport endpoint's dns_* families distinguished by an
// endpoint label. The given constant labels are applied to every
// family, so several servers (one per experiment phase, say) can share
// one registry with disjoint labelsets. Call after Start (the
// endpoints must exist). The query log is registered separately by its
// owner (see AsyncLog.RegisterMetrics), which also owns its lifecycle.
func (s *Server) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	s.init()
	reg.MustCounterVec("dnsserver_queries_total",
		"Attributed queries, by test-policy label.",
		"policy", s.metrics.queries, labels...)
	reg.MustCounterFunc("dnsserver_responder_panics_total",
		"Responder panics recovered into SERVFAIL answers.",
		func() uint64 { return s.panics.Value() }, labels...)
	reg.MustCounter("dnsserver_zone_misses_total",
		"Queries refused for matching no served zone.",
		&s.metrics.zoneMiss, labels...)
	if s.srv4 != nil {
		s.srv4.RegisterMetrics(reg, append(labelsCopy(labels), telemetry.L("endpoint", "v4"))...)
	}
	if s.srv6 != nil {
		s.srv6.RegisterMetrics(reg, append(labelsCopy(labels), telemetry.L("endpoint", "v6"))...)
	}
}

// labelsCopy guards against append aliasing when one label slice fans
// out to several endpoint registrations.
func labelsCopy(labels []telemetry.Label) []telemetry.Label {
	out := make([]telemetry.Label, len(labels), len(labels)+1)
	copy(out, labels)
	return out
}
