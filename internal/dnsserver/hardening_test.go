package dnsserver

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/dns"
)

// TestResponderPanicRecovery verifies a panicking responder is
// contained: the query gets SERVFAIL, the panic is counted and logged
// with (test, MTA) attribution, and other responders keep working.
func TestResponderPanicRecovery(t *testing.T) {
	zone := &Zone{
		Suffix: testSuffix,
		Responders: map[string]Responder{
			"tboom": ResponderFunc(func(q *Query) Response {
				panic("synthesis bug for " + q.TestID)
			}),
			"tok": ResponderFunc(func(q *Query) Response {
				return Response{Records: []dns.RR{TXTRecord(q.Name, "v=spf1 ?all", 60)}}
			}),
		},
	}
	var mu sync.Mutex
	var logged []string
	srv := &Server{
		Zones: []*Zone{zone},
		Log:   &QueryLog{},
		Logf: func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			logged = append(logged, format)
		},
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	c := &dns.Client{Timeout: 3 * time.Second}
	resp, err := c.Query(context.Background(), addr.String(), "tboom.m0007."+testSuffix, dns.TypeTXT)
	if err != nil {
		t.Fatalf("query with panicking responder: %v", err)
	}
	if resp.RCode != dns.RCodeServerFailure {
		t.Errorf("rcode %d, want SERVFAIL", resp.RCode)
	}
	if got := srv.Panics(); got != 1 {
		t.Errorf("Panics() = %d, want 1", got)
	}
	mu.Lock()
	n := len(logged)
	mu.Unlock()
	if n == 0 {
		t.Error("responder panic was not logged")
	}

	// The healthy responder is unaffected.
	payload := txtPayload(t, queryTXT(t, addr.String(), "tok.m0007."+testSuffix))
	if payload != "v=spf1 ?all" {
		t.Errorf("healthy responder after panic: %q", payload)
	}
}

// stallSink is a Sink whose Append blocks until released — a stalled
// disk from the serving path's point of view.
type stallSink struct {
	mu      sync.Mutex
	entries []LogEntry
	gate    chan struct{}
}

func (s *stallSink) Append(e LogEntry) {
	<-s.gate
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, e)
}

func (s *stallSink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// TestAsyncLogNeverBlocksAndAccounts drives an AsyncLog over a stalled
// sink: appends must return immediately, overflow must be counted, and
// after the stall clears every entry must be either delivered or
// accounted for in Dropped.
func TestAsyncLogNeverBlocksAndAccounts(t *testing.T) {
	sink := &stallSink{gate: make(chan struct{})}
	al := NewAsyncLog(sink, 4)

	const total = 100
	start := time.Now()
	for i := 0; i < total; i++ {
		al.Append(LogEntry{Name: "q.example.", TestID: "t01"})
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("100 appends against a stalled sink took %v; Append must not block", took)
	}
	if al.Dropped() == 0 {
		t.Fatal("stalled sink with buffer 4 dropped nothing out of 100 appends")
	}

	close(sink.gate) // disk recovers
	al.Close()       // flushes the buffer

	delivered := uint64(sink.len())
	if delivered+al.Dropped() != al.Appended() {
		t.Errorf("accounting broken: delivered %d + dropped %d != appended %d",
			delivered, al.Dropped(), al.Appended())
	}
	if al.Appended() != total {
		t.Errorf("Appended() = %d, want %d", al.Appended(), total)
	}
}

// TestServerWithAsyncLogAccounting runs a real server whose query log
// drains slowly and verifies the acceptance invariant: every query is
// either in the log or in the dropped counter — none vanish.
func TestServerWithAsyncLogAccounting(t *testing.T) {
	inner := &QueryLog{}
	slow := &slowSink{inner: inner, delay: 2 * time.Millisecond}
	al := NewAsyncLog(slow, 2)
	zone := &Zone{
		Suffix: testSuffix,
		Responders: map[string]Responder{
			"t01": ResponderFunc(func(q *Query) Response {
				return Response{Records: []dns.RR{TXTRecord(q.Name, "v=spf1 ?all", 60)}}
			}),
		},
	}
	srv := &Server{Zones: []*Zone{zone}, Log: al}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}

	const queries = 40
	c := &dns.Client{Timeout: 3 * time.Second}
	for i := 0; i < queries; i++ {
		if _, err := c.Query(context.Background(), addr.String(), "t01.m0001."+testSuffix, dns.TypeTXT); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx) // stop appends, then close the log
	al.Close()

	delivered := uint64(inner.Len())
	if al.Appended() != queries {
		t.Errorf("Appended() = %d, want %d (one per query)", al.Appended(), queries)
	}
	if delivered+al.Dropped() != al.Appended() {
		t.Errorf("lost log entries: delivered %d + dropped %d != appended %d",
			delivered, al.Dropped(), al.Appended())
	}
	t.Logf("delivered %d, dropped %d of %d queries", delivered, al.Dropped(), queries)
}

// slowSink delays each delivery — a slow but live disk.
type slowSink struct {
	inner Sink
	delay time.Duration
}

func (s *slowSink) Append(e LogEntry) {
	time.Sleep(s.delay)
	s.inner.Append(e)
}

// TestWriterSinkJSONL checks the disk sink emits one JSON object per
// line with the attribution fields intact.
func TestWriterSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	ws := NewWriterSink(&buf)
	ws.Append(LogEntry{Name: "l1.t01.m0042." + testSuffix, TestID: "t01", MTAID: "m0042", Rest: []string{"l1"}})
	ws.Append(LogEntry{Name: "t02.m0001." + testSuffix, TestID: "t02", MTAID: "m0001"})
	if err := ws.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"t01"`) || !strings.Contains(lines[0], `"m0042"`) {
		t.Errorf("first line lacks attribution: %s", lines[0])
	}
}
