package dnsserver

import (
	"fmt"
	"io"
	"os"
	"sync"

	"sendervalid/internal/telemetry"
	"sendervalid/internal/wal"
)

// This file puts the on-disk query log on the write-ahead log. The
// payload stays the same JSON line AppendLogJSON has always produced —
// one entry per record — so the analysis pipeline keeps its codec; the
// framing adds a checksum and a recovery story, so a machine crash
// mid-collection costs a truncated tail instead of a log whose last
// line may or may not be garbage. OpenLogStream is the read side:
// it walks a log's rotated segments in append order, sniffs each
// segment's format from its first byte, and presents the whole history
// as one plain JSONL stream to the existing ingest.

// MultiSink fans each entry out to every sink in order. The typical
// composition keeps the in-memory QueryLog (for the live status
// printer and end-of-run analyses) while a WALSink makes the same
// entries durable.
type MultiSink []Sink

// Append implements Sink.
func (m MultiSink) Append(e LogEntry) {
	for _, s := range m {
		s.Append(e)
	}
}

// WALSink appends each query-log entry as one checksummed WAL record.
// Like WriterSink it is safe for concurrent use, encodes through the
// reflection-free codec into a reused buffer, and keeps write errors
// sticky — surfaced through Err and Check rather than the serving
// path. It is a blocking disk sink: wrap it in an AsyncLog.
type WALSink struct {
	mu  sync.Mutex
	w   *wal.WAL
	buf []byte
}

// NewWALSink opens (recovering if needed) the WAL at path and returns
// a sink appending to it.
func NewWALSink(path string, opts wal.Options) (*WALSink, error) {
	w, err := wal.Open(path, opts)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: opening query-log WAL: %w", err)
	}
	return &WALSink{w: w, buf: make([]byte, 0, 512)}, nil
}

// Append implements Sink. The first append failure wedges the
// underlying WAL; later entries are dropped there and counted in its
// failure metric.
func (s *WALSink) Append(e LogEntry) {
	s.mu.Lock()
	s.buf = AppendLogJSON(s.buf[:0], e)
	_ = s.w.Append(s.buf)
	s.mu.Unlock()
}

// Sync forces buffered records to stable storage.
func (s *WALSink) Sync() error { return s.w.Sync() }

// Close syncs and closes the underlying WAL.
func (s *WALSink) Close() error { return s.w.Close() }

// Err returns the WAL's sticky failure, nil while healthy.
func (s *WALSink) Err() error { return s.w.Err() }

// Check is Err in telemetry.Health check form.
func (s *WALSink) Check() error { return s.w.Check() }

// Recovered reports what opening the WAL salvaged and truncated.
func (s *WALSink) Recovered() wal.RecoverStats { return s.w.Recovered() }

// RegisterMetrics publishes the underlying WAL's durability
// instruments.
func (s *WALSink) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	s.w.RegisterMetrics(reg, labels...)
}

// LogStream reads a query log — plain JSONL, WAL-framed, rotated into
// segments, or any mix — as one continuous JSONL stream. Each segment's
// format is sniffed independently from its first byte, because a log
// directory can legitimately hold both: plain segments from a pre-WAL
// collector next to framed ones from the current.
type LogStream struct {
	segs   []string
	idx    int
	f      *os.File
	cur    io.Reader
	walr   *wal.Reader
	stats  wal.RecoverStats
	framed int
}

// OpenLogStream opens the query log at path and all its rotated
// segments (<path>.1, <path>.2, ...) in append order.
func OpenLogStream(path string) (*LogStream, error) {
	segs, err := wal.Segments(path)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: listing log segments: %w", err)
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("dnsserver: opening log %s: %w", path, os.ErrNotExist)
	}
	return &LogStream{segs: segs}, nil
}

// Read implements io.Reader over the concatenated segments.
func (s *LogStream) Read(p []byte) (int, error) {
	for {
		if s.cur == nil {
			if s.idx >= len(s.segs) {
				return 0, io.EOF
			}
			if err := s.openNext(); err != nil {
				return 0, err
			}
		}
		n, err := s.cur.Read(p)
		if err == io.EOF {
			s.finishSegment()
			if n > 0 {
				return n, nil
			}
			continue
		}
		return n, err
	}
}

// openNext opens segment idx and sniffs its framing.
func (s *LogStream) openNext() error {
	f, err := os.Open(s.segs[s.idx])
	if err != nil {
		return fmt.Errorf("dnsserver: opening log segment: %w", err)
	}
	var first [1]byte
	n, rerr := f.Read(first[:])
	if rerr != nil && rerr != io.EOF {
		f.Close()
		return fmt.Errorf("dnsserver: reading log segment: %w", rerr)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("dnsserver: seeking log segment: %w", err)
	}
	s.f = f
	if n == 1 && wal.IsFramed(first[:]) {
		s.walr = wal.NewReader(f)
		s.cur = s.walr
		s.framed++
	} else {
		s.walr = nil
		s.cur = f
	}
	return nil
}

// finishSegment folds the finished segment's salvage accounting into
// the stream totals and advances.
func (s *LogStream) finishSegment() {
	if s.walr != nil {
		st := s.walr.Stats()
		s.stats.Records += st.Records
		s.stats.GoodBytes += st.GoodBytes
		s.stats.DroppedBytes += st.DroppedBytes
		s.stats.Truncated = s.stats.Truncated || st.Truncated
		s.walr = nil
	}
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	s.cur = nil
	s.idx++
}

// Close releases the currently open segment.
func (s *LogStream) Close() error {
	if s.f != nil {
		err := s.f.Close()
		s.f = nil
		s.cur = nil
		return err
	}
	return nil
}

// Segments reports how many files make up the stream; Framed how many
// of those read so far were WAL-framed.
func (s *LogStream) Segments() int { return len(s.segs) }
func (s *LogStream) Framed() int   { return s.framed }

// Stats accumulates the framed segments' salvage accounting; complete
// once the stream has been consumed to EOF. A nonzero DroppedBytes
// means some tail of a framed segment was crash debris the tolerant
// reader skipped.
func (s *LogStream) Stats() wal.RecoverStats { return s.stats }
