package smtp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	"sendervalid/internal/trace"
)

// Session carries the state of one SMTP connection through the
// handler hooks.
type Session struct {
	// RemoteAddr is the client's transport address.
	RemoteAddr net.Addr
	// ClientIP is the client address parsed from RemoteAddr. SPF
	// validation evaluates this address.
	ClientIP netip.Addr
	// Helo is the argument of the client's HELO/EHLO command.
	Helo string
	// Ehlo reports whether the client used EHLO (vs HELO).
	Ehlo bool
	// MailFrom is the envelope sender from MAIL FROM.
	MailFrom string
	// MailSeen reports whether a MAIL command was accepted in the
	// current transaction (the null reverse-path "<>" leaves MailFrom
	// empty but MailSeen true).
	MailSeen bool
	// RcptTo collects accepted envelope recipients.
	RcptTo []string

	// Meta is scratch space for handlers (e.g. per-session validation
	// results).
	Meta map[string]any
}

// reset clears per-transaction state after RSET / completed delivery.
func (s *Session) reset() {
	s.MailFrom = ""
	s.MailSeen = false
	s.RcptTo = nil
}

// Handler supplies per-command policy for a Server. Any nil hook (or
// nil *Reply return) applies the protocol default. Returning a
// negative reply refuses the command; the session continues.
type Handler struct {
	// OnConnect runs before the greeting. Returning a 5xx reply
	// greets-and-rejects (the spam/blacklist rejection behaviour the
	// paper observed from 28% of NotifyMX MTAs, §6.2).
	OnConnect func(s *Session) *Reply
	// OnHelo runs for HELO/EHLO; the paper's HELO test policy hooks
	// SPF HELO-identity validation here.
	OnHelo func(s *Session) *Reply
	// OnMail runs for MAIL FROM; real-time SPF validation of the MAIL
	// identity hooks here.
	OnMail func(s *Session, from string) *Reply
	// OnRcpt runs per RCPT TO; recipient validation and
	// postmaster-whitelisting logic hook here.
	OnRcpt func(s *Session, to string) *Reply
	// OnData runs for the DATA command itself, before any content.
	OnData func(s *Session) *Reply
	// OnMessage runs after the terminating dot with the full message.
	OnMessage func(s *Session, msg []byte) *Reply
	// OnClose runs when the connection ends (normally or not).
	OnClose func(s *Session)
}

// Server is a receiving MTA front end.
type Server struct {
	// Hostname is announced in the greeting and EHLO reply.
	Hostname string
	// Handler supplies command policy.
	Handler Handler
	// Extensions lists EHLO capability lines (e.g. "8BITMIME").
	Extensions []string
	// ReadTimeout bounds waiting for a client command. Zero means 60s.
	ReadTimeout time.Duration
	// MaxMessageBytes caps DATA payloads. Zero means 10 MiB.
	MaxMessageBytes int
	// MaxConns caps concurrent sessions; connections over the cap are
	// greeted with 421 and closed immediately (graceful shedding, not
	// a wedged accept queue). Zero means 1024.
	MaxConns int
	// MaxLineBytes caps one command line (RFC 5321 §4.5.3.1.6 requires
	// at least 512 octets; ESMTP in practice needs more). An over-long
	// line is consumed and answered 500, charging the session's error
	// budget, so a byte-spewing client cannot grow memory without
	// bound. Zero means 2048.
	MaxLineBytes int
	// MaxErrors is the per-session error budget: syntax errors,
	// unknown commands, bad sequences, and over-long lines each charge
	// it, and exceeding it closes the session with 421. Zero means 10.
	MaxErrors int
	// MaxCommands caps commands per session before a 421 close — a
	// slowloris/abuse guard so one client cannot hold a session
	// forever. Zero means 4096.
	MaxCommands int
	// StampReceived prepends the RFC 5321 §4.4 trace header to each
	// accepted message before OnMessage sees it.
	StampReceived bool
	// Clock supplies timestamps for trace headers; nil means time.Now.
	Clock func() time.Time
	// Tracer, when non-nil, opens one root span per accepted session
	// ("smtp.session"), annotated at close with the client's HELO
	// identity and command count.
	Tracer *trace.Tracer

	mu     sync.Mutex
	wg     sync.WaitGroup
	ln     []net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	metrics serverMetrics
}

// forget deregisters an active session connection (admit registers
// them, so Close can interrupt sessions blocked on reads).
func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Serve accepts connections from ln until the server shuts down. It
// may be called for several listeners concurrently (e.g. the MTA's
// IPv4 and IPv6 addresses). Transient accept errors — EMFILE-class
// descriptor exhaustion above all — are retried with exponential
// backoff instead of killing the accept loop.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return
	}
	s.ln = append(s.ln, ln)
	s.mu.Unlock()
	var delay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			if delay == 0 {
				delay = 5 * time.Millisecond
			} else if delay *= 2; delay > time.Second {
				delay = time.Second
			}
			time.Sleep(delay)
			continue
		}
		delay = 0
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// SheddedConns returns how many connections were turned away with 421
// because the server was at MaxConns.
func (s *Server) SheddedConns() uint64 { return s.metrics.shedded.Value() }

// EvictedSessions returns how many sessions were closed with 421 for
// exhausting their command or error budget.
func (s *Server) EvictedSessions() uint64 { return s.metrics.evicted.Value() }

// Close stops all listeners and waits for active sessions.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	lns := s.ln
	s.ln = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) hostname() string {
	if s.Hostname != "" {
		return s.Hostname
	}
	return "mta.invalid"
}

func (s *Server) readTimeout() time.Duration {
	if s.ReadTimeout > 0 {
		return s.ReadTimeout
	}
	return 60 * time.Second
}

func (s *Server) maxMessage() int {
	if s.MaxMessageBytes > 0 {
		return s.MaxMessageBytes
	}
	return 10 << 20
}

func (s *Server) maxConns() int {
	if s.MaxConns > 0 {
		return s.MaxConns
	}
	return 1024
}

func (s *Server) maxLine() int {
	if s.MaxLineBytes > 0 {
		return s.MaxLineBytes
	}
	return 2048
}

func (s *Server) maxErrors() int {
	if s.MaxErrors > 0 {
		return s.MaxErrors
	}
	return 10
}

func (s *Server) maxCommands() int {
	if s.MaxCommands > 0 {
		return s.MaxCommands
	}
	return 4096
}

func clientIP(addr net.Addr) netip.Addr {
	if addr == nil {
		return netip.Addr{}
	}
	if ap, err := netip.ParseAddrPort(addr.String()); err == nil {
		return ap.Addr().Unmap()
	}
	return netip.Addr{}
}

// admit registers the connection, enforcing the concurrent-session
// cap. overCap is true when the connection must be shed with 421.
func (s *Server) admit(conn net.Conn) (ok, overCap bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, false
	}
	if len(s.conns) >= s.maxConns() {
		s.metrics.shedded.Inc()
		return false, true
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	return true, false
}

func (s *Server) noteEvicted() {
	s.metrics.evicted.Inc()
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	ok, overCap := s.admit(conn)
	if overCap {
		// Graceful shedding: tell the client to come back rather than
		// letting it queue against a saturated server.
		_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
		reply := &Reply{Code: 421, Text: s.hostname() + " too many connections, try again later"}
		_, _ = conn.Write([]byte(reply.format()))
		return
	}
	if !ok {
		return
	}
	defer s.forget(conn)
	s.metrics.sessions.Inc()
	s.metrics.active.Add(1)
	defer s.metrics.active.Add(-1)
	sess := &Session{
		RemoteAddr: conn.RemoteAddr(),
		ClientIP:   clientIP(conn.RemoteAddr()),
		Meta:       make(map[string]any),
	}
	if s.Handler.OnClose != nil {
		defer s.Handler.OnClose(sess)
	}
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	send := func(r *Reply) bool {
		if _, err := bw.WriteString(r.format()); err != nil {
			return false
		}
		return bw.Flush() == nil
	}

	// Per-session abuse budgets: protocol errors and total commands
	// are both bounded, and exhausting either closes with 421 instead
	// of looping forever against a byte-spewing or stalling client.
	commands, errs := 0, 0
	sp := s.Tracer.StartSpan("smtp.session")
	if sp != nil {
		sp.SetAttr("client", sess.ClientIP.String())
	}
	defer func() {
		if sp != nil {
			sp.SetAttr("helo", sess.Helo)
			sp.SetInt("commands", int64(commands))
			sp.End()
		}
	}()
	evict := func(text string) {
		s.noteEvicted()
		send(&Reply{Code: 421, Text: s.hostname() + " " + text})
	}
	// chargeError charges one protocol error and sends r; it returns
	// false when the session must end (budget exhausted or dead conn).
	chargeError := func(r *Reply) bool {
		errs++
		if errs > s.maxErrors() {
			evict("too many errors, closing connection")
			return false
		}
		return send(r)
	}
	// sendOutcome sends a command's reply, charging the error budget
	// for protocol-level failures (500–504: syntax errors, bad
	// sequences, unimplemented commands) but not for policy rejections
	// (550, 554, 4xx), which are legitimate measurement outcomes, not
	// abuse.
	sendOutcome := func(r *Reply) bool {
		if r.Code >= 500 && r.Code <= 504 {
			return chargeError(r)
		}
		return send(r)
	}

	greeting := &Reply{Code: 220, Text: s.hostname() + " ESMTP service ready"}
	if s.Handler.OnConnect != nil {
		if r := s.Handler.OnConnect(sess); r != nil {
			greeting = r
		}
	}
	if !send(greeting) || !greeting.Positive() {
		return
	}

	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout()))
		line, err := readCommandLine(br, s.maxLine())
		if err != nil {
			if errors.Is(err, errLineTooLong) {
				if !chargeError(ReplyLineTooLong) {
					return
				}
				continue
			}
			if errors.Is(err, errFlooded) {
				evict("line flood, closing connection")
			}
			return
		}
		commands++
		s.metrics.commands.Inc()
		if commands > s.maxCommands() {
			evict("too many commands, closing connection")
			return
		}
		verb, arg, _ := strings.Cut(line, " ")
		verb = strings.ToUpper(verb)

		switch verb {
		case "HELO", "EHLO":
			if arg == "" {
				if !chargeError(ReplyParamError) {
					return
				}
				continue
			}
			sess.Helo = arg
			sess.Ehlo = verb == "EHLO"
			sess.reset()
			reply := s.heloReply(sess)
			if s.Handler.OnHelo != nil {
				if r := s.Handler.OnHelo(sess); r != nil {
					reply = r
				}
			}
			if !send(reply) {
				return
			}

		case "MAIL":
			reply := s.handleMail(sess, arg)
			if !sendOutcome(reply) {
				return
			}

		case "RCPT":
			reply := s.handleRcpt(sess, arg)
			if !sendOutcome(reply) {
				return
			}

		case "DATA":
			if !sess.MailSeen && len(sess.RcptTo) == 0 {
				if !sendOutcome(ReplyBadSequence) {
					return
				}
				continue
			}
			if len(sess.RcptTo) == 0 {
				if !send(&Reply{Code: 554, Text: "No valid recipients"}) {
					return
				}
				continue
			}
			reply := ReplyStartMail
			if s.Handler.OnData != nil {
				if r := s.Handler.OnData(sess); r != nil {
					reply = r
				}
			}
			if !send(reply) {
				return
			}
			if reply.Code != 354 {
				continue
			}
			msg, err := s.readData(conn, br)
			if err != nil {
				return
			}
			if s.StampReceived {
				msg = append([]byte(s.receivedHeader(sess)), msg...)
			}
			final := &Reply{Code: 250, Text: "OK: queued"}
			if s.Handler.OnMessage != nil {
				if r := s.Handler.OnMessage(sess, msg); r != nil {
					final = r
				}
			}
			s.metrics.messages.Inc()
			sess.reset()
			if !send(final) {
				return
			}

		case "RSET":
			sess.reset()
			if !send(ReplyOK) {
				return
			}

		case "NOOP":
			if !send(ReplyOK) {
				return
			}

		case "QUIT":
			send(ReplyBye)
			return

		case "VRFY":
			if !send(&Reply{Code: 252, Text: "Cannot VRFY user"}) {
				return
			}

		default:
			if !chargeError(ReplyNotImplemented) {
				return
			}
		}
	}
}

func (s *Server) heloReply(sess *Session) *Reply {
	if !sess.Ehlo {
		return &Reply{Code: 250, Text: s.hostname()}
	}
	lines := append([]string{s.hostname() + " greets " + sess.Helo}, s.Extensions...)
	return &Reply{Code: 250, Text: strings.Join(lines, "\n")}
}

func (s *Server) handleMail(sess *Session, arg string) *Reply {
	upper := strings.ToUpper(arg)
	if !strings.HasPrefix(upper, "FROM:") {
		return ReplyParamError
	}
	if sess.Helo == "" {
		return ReplyBadSequence
	}
	addr, ok := ParseAddress(arg[len("FROM:"):])
	if !ok {
		return ReplyParamError
	}
	sess.reset()
	sess.MailFrom = addr
	sess.MailSeen = true
	if s.Handler.OnMail != nil {
		if r := s.Handler.OnMail(sess, addr); r != nil {
			if !r.Positive() {
				sess.MailFrom = ""
				sess.MailSeen = false
			}
			return r
		}
	}
	return ReplyOK
}

func (s *Server) handleRcpt(sess *Session, arg string) *Reply {
	upper := strings.ToUpper(arg)
	if !strings.HasPrefix(upper, "TO:") {
		return ReplyParamError
	}
	if !sess.MailSeen {
		return ReplyBadSequence
	}
	addr, ok := ParseAddress(arg[len("TO:"):])
	if !ok || addr == "" {
		return ReplyParamError
	}
	if s.Handler.OnRcpt != nil {
		if r := s.Handler.OnRcpt(sess, addr); r != nil {
			if r.Positive() {
				sess.RcptTo = append(sess.RcptTo, addr)
			}
			return r
		}
	}
	sess.RcptTo = append(sess.RcptTo, addr)
	return ReplyOK
}

// maxDataLine bounds one DATA text line. RFC 5321 §4.5.3.1.6 requires
// receivers to handle 1000 octets; 8 KiB tolerates sloppy senders
// while still bounding per-line memory.
const maxDataLine = 8192

// Line-discipline errors surfaced by readCommandLine.
var (
	errLineTooLong = errors.New("smtp: line too long")
	errFlooded     = errors.New("smtp: unterminated line flood")
)

// readCommandLine reads one newline-terminated line of at most max
// bytes. An over-long line is consumed to its terminator without being
// buffered and reported as errLineTooLong, so the caller can answer
// 500 and keep the session. A line that never terminates within a
// generous multiple of max is reported as errFlooded — a byte-spewing
// client the session should drop, with memory use bounded throughout.
func readCommandLine(br *bufio.Reader, max int) (string, error) {
	var buf []byte
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		if err == bufio.ErrBufferFull {
			if len(buf) > max {
				if derr := discardLine(br, 64*max); derr != nil {
					return "", derr
				}
				return "", errLineTooLong
			}
			continue
		}
		if err != nil {
			return "", err
		}
		if len(buf) > max {
			return "", errLineTooLong
		}
		return strings.TrimRight(string(buf), "\r\n"), nil
	}
}

// discardLine consumes input up to and including the next newline
// without buffering it, giving up after limit bytes.
func discardLine(br *bufio.Reader, limit int) error {
	discarded := 0
	for {
		frag, err := br.ReadSlice('\n')
		discarded += len(frag)
		if err == bufio.ErrBufferFull {
			if discarded > limit {
				return errFlooded
			}
			continue
		}
		return err
	}
}

// readData consumes a DATA payload up to the terminating
// <CRLF>.<CRLF>, reversing dot-stuffing. Over-long text lines
// terminate the connection: mid-payload there is no way to recover
// command framing with a misbehaving sender.
func (s *Server) readData(conn net.Conn, br *bufio.Reader) ([]byte, error) {
	var buf bytes.Buffer
	max := s.maxMessage()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout()))
		line, err := readCommandLine(br, maxDataLine)
		if err != nil {
			return nil, err
		}
		trimmed := line
		if trimmed == "." {
			return buf.Bytes(), nil
		}
		if strings.HasPrefix(trimmed, ".") {
			trimmed = trimmed[1:] // un-stuff
		}
		if buf.Len()+len(trimmed)+2 > max {
			return nil, fmt.Errorf("smtp: message exceeds %d bytes", max)
		}
		buf.WriteString(trimmed)
		buf.WriteString("\r\n")
	}
}

// ListenAndServe is a convenience for real-socket servers: it binds
// addr ("127.0.0.1:0" for tests) and serves until Close. It returns
// the bound address.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(ln)
	return ln.Addr(), nil
}

// receivedHeader builds the trace header recording how the message
// arrived (RFC 5321 §4.4).
func (s *Server) receivedHeader(sess *Session) string {
	now := time.Now()
	if s.Clock != nil {
		now = s.Clock()
	}
	with := "SMTP"
	if sess.Ehlo {
		with = "ESMTP"
	}
	return fmt.Sprintf("Received: from %s (%s)\r\n\tby %s with %s; %s\r\n",
		sess.Helo, sess.ClientIP, s.hostname(), with,
		now.Format("Mon, 02 Jan 2006 15:04:05 -0700"))
}
