// Package smtp implements the subset of the Simple Mail Transfer
// Protocol (RFC 5321) the measurement apparatus needs: a receiving-MTA
// server framework with per-command hooks (the attachment points for
// SPF/DKIM/DMARC validation policy), and a sending client that can
// both deliver legitimate messages and execute the study's probe
// sequence — EHLO, MAIL, RCPT, DATA with inter-command sleeps and a
// disconnect before any message content is transmitted (paper §4.6).
package smtp

import (
	"fmt"
	"strings"
)

// Reply is an SMTP server reply.
type Reply struct {
	// Code is the three-digit reply code.
	Code int
	// Text is the reply's human-readable portion. Embedded newlines
	// produce a multiline reply.
	Text string
}

// Common replies.
var (
	ReplyOK             = &Reply{Code: 250, Text: "OK"}
	ReplyBye            = &Reply{Code: 221, Text: "Bye"}
	ReplyStartMail      = &Reply{Code: 354, Text: "End data with <CR><LF>.<CR><LF>"}
	ReplyBadSequence    = &Reply{Code: 503, Text: "Bad sequence of commands"}
	ReplySyntaxError    = &Reply{Code: 500, Text: "Syntax error"}
	ReplyParamError     = &Reply{Code: 501, Text: "Syntax error in parameters"}
	ReplyNotImplemented = &Reply{Code: 502, Text: "Command not implemented"}
	ReplyNoSuchUser     = &Reply{Code: 550, Text: "No such user here"}
	ReplyLineTooLong    = &Reply{Code: 500, Text: "Line too long"}
)

// Positive reports whether the reply code indicates success (2xx/3xx).
func (r *Reply) Positive() bool { return r.Code >= 200 && r.Code < 400 }

// format renders the reply in wire form, handling multiline text.
func (r *Reply) format() string {
	lines := strings.Split(r.Text, "\n")
	var sb strings.Builder
	for i, line := range lines {
		sep := " "
		if i < len(lines)-1 {
			sep = "-"
		}
		fmt.Fprintf(&sb, "%03d%s%s\r\n", r.Code, sep, line)
	}
	return sb.String()
}

// Error is a non-2xx/3xx SMTP reply surfaced as a Go error.
type Error struct {
	Code    int
	Message string
}

func (e *Error) Error() string {
	return fmt.Sprintf("smtp: %d %s", e.Code, e.Message)
}

// Permanent reports whether the error is a 5xx permanent failure.
func (e *Error) Permanent() bool { return e.Code >= 500 }

// Temporary reports whether the error is a 4xx transient failure.
func (e *Error) Temporary() bool { return e.Code >= 400 && e.Code < 500 }

// ParseAddress extracts the address from a MAIL FROM / RCPT TO
// argument: "<user@example.com>" (angle brackets optional, ESMTP
// parameters after the address ignored). The null reverse-path "<>"
// returns an empty string with ok=true.
func ParseAddress(arg string) (addr string, ok bool) {
	arg = strings.TrimSpace(arg)
	if i := strings.IndexByte(arg, '<'); i >= 0 {
		j := strings.IndexByte(arg[i:], '>')
		if j < 0 {
			return "", false
		}
		return arg[i+1 : i+j], true
	}
	// Bare address form; strip trailing ESMTP parameters.
	if i := strings.IndexByte(arg, ' '); i >= 0 {
		arg = arg[:i]
	}
	if arg == "" {
		return "", false
	}
	return arg, true
}

// DomainOf returns the domain part of an address, lowercased, or ""
// when the address has none.
func DomainOf(addr string) string {
	i := strings.LastIndexByte(addr, '@')
	if i < 0 || i == len(addr)-1 {
		return ""
	}
	return strings.ToLower(addr[i+1:])
}

// LocalOf returns the local part of an address.
func LocalOf(addr string) string {
	i := strings.LastIndexByte(addr, '@')
	if i < 0 {
		return addr
	}
	return addr[:i]
}
