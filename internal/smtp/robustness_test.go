package smtp

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"sendervalid/internal/netsim"
)

// rawSession dials the server and returns the raw connection for
// protocol-level abuse.
func rawSession(t *testing.T, fabric *netsim.Fabric, addr string) (interface {
	Write(p []byte) (int, error)
	Read(p []byte) (int, error)
	Close() error
}, func(prefix string)) {
	t.Helper()
	conn, err := fabric.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	expect := func(prefix string) {
		t.Helper()
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !strings.HasPrefix(string(buf[:n]), prefix) {
			t.Fatalf("got %q, want prefix %q", buf[:n], prefix)
		}
	}
	return conn, expect
}

func TestServerSurvivesGarbage(t *testing.T) {
	srv := &Server{ReadTimeout: 2 * time.Second}
	fabric, addr := startServer(t, srv)
	conn, expect := rawSession(t, fabric, addr)
	expect("220")
	// Binary garbage line.
	if _, err := conn.Write([]byte("\x00\xff\xfe binary trash\r\n")); err != nil {
		t.Fatal(err)
	}
	expect("502")
	// Empty-argument EHLO.
	_, _ = conn.Write([]byte("EHLO\r\n"))
	expect("501")
	// Malformed MAIL argument.
	_, _ = conn.Write([]byte("EHLO ok.example\r\n"))
	expect("250")
	_, _ = conn.Write([]byte("MAIL FROM:<unterminated\r\n"))
	expect("501")
	_, _ = conn.Write([]byte("MAIL bogus\r\n"))
	expect("501")
	// The session must still be usable.
	_, _ = conn.Write([]byte("MAIL FROM:<ok@example.com>\r\n"))
	expect("250")
}

func TestServerNullReversePath(t *testing.T) {
	srv := &Server{}
	fabric, addr := startServer(t, srv)
	conn, expect := rawSession(t, fabric, addr)
	expect("220")
	_, _ = conn.Write([]byte("EHLO bounce.example\r\n"))
	expect("250")
	// Bounce messages use the null reverse-path.
	_, _ = conn.Write([]byte("MAIL FROM:<>\r\n"))
	expect("250")
	_, _ = conn.Write([]byte("RCPT TO:<postmaster@x.example>\r\n"))
	expect("250")
	_, _ = conn.Write([]byte("DATA\r\n"))
	expect("354")
	_, _ = conn.Write([]byte("Subject: bounce\r\n\r\nbody\r\n.\r\n"))
	expect("250")
}

func TestServerMessageSizeCap(t *testing.T) {
	srv := &Server{MaxMessageBytes: 512}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if err := c.Hello("big.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail("a@b.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rcpt("x@y.example"); err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("spam and eggs and spam\r\n", 100)
	err := c.Data([]byte(big))
	if err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestServerDisconnectMidData(t *testing.T) {
	var sawMessage bool
	srv := &Server{
		ReadTimeout: time.Second,
		Handler: Handler{
			OnMessage: func(s *Session, msg []byte) *Reply { sawMessage = true; return nil },
		},
	}
	fabric, addr := startServer(t, srv)
	conn, expect := rawSession(t, fabric, addr)
	expect("220")
	_, _ = conn.Write([]byte("EHLO x.example\r\nMAIL FROM:<a@b.c>\r\n"))
	expect("250")
	expect("250")
	_, _ = conn.Write([]byte("RCPT TO:<d@e.f>\r\nDATA\r\n"))
	expect("250")
	expect("354")
	// Send partial content, then vanish.
	_, _ = conn.Write([]byte("Subject: interrupted\r\npartial body"))
	conn.Close()
	srv.Close()
	if sawMessage {
		t.Error("truncated DATA delivered a message")
	}
}

func TestServerPipelinedCommands(t *testing.T) {
	// Clients may pipeline; the server must answer each command in
	// order.
	srv := &Server{}
	fabric, addr := startServer(t, srv)
	conn, expect := rawSession(t, fabric, addr)
	expect("220")
	_, _ = conn.Write([]byte("EHLO pipeline.example\r\nMAIL FROM:<a@b.c>\r\nRCPT TO:<x@y.z>\r\nDATA\r\n"))
	expect("250") // EHLO
	expect("250") // MAIL
	expect("250") // RCPT
	expect("354") // DATA
}

func TestServerRsetClearsTransaction(t *testing.T) {
	srv := &Server{}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if err := c.Hello("x.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail("a@b.c"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Cmd("RSET"); err != nil {
		t.Fatal(err)
	}
	// After RSET, RCPT needs a fresh MAIL.
	err := c.Rcpt("x@y.z")
	var serr *Error
	if !errors.As(err, &serr) || serr.Code != 503 {
		t.Errorf("RCPT after RSET: %v", err)
	}
}

func TestServerManySequentialTransactions(t *testing.T) {
	var accepted int
	srv := &Server{Handler: Handler{
		OnMessage: func(s *Session, msg []byte) *Reply { accepted++; return nil },
	}}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if err := c.Hello("bulk.example"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Mail(fmt.Sprintf("sender%d@b.example", i)); err != nil {
			t.Fatal(err)
		}
		if err := c.Rcpt("x@y.example"); err != nil {
			t.Fatal(err)
		}
		if err := c.Data([]byte(fmt.Sprintf("Subject: %d\r\n\r\nbody\r\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Quit()
	srv.Close()
	if accepted != 20 {
		t.Errorf("accepted %d of 20 messages", accepted)
	}
}

func TestClientReplyParsingEdgeCases(t *testing.T) {
	fabric := netsim.NewFabric()
	ln, err := fabric.Listen(netip.MustParseAddrPort("10.2.0.1:25"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Greeting, then a malformed reply to the first command.
		_, _ = conn.Write([]byte("220 weird server\r\n"))
		buf := make([]byte, 256)
		_, _ = conn.Read(buf)
		_, _ = conn.Write([]byte("xx not a reply\r\n"))
	}()
	c, err := Dial(context.Background(), fabric, "10.2.0.1:25")
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 2 * time.Second
	if _, _, err := c.Cmd("NOOP"); err == nil {
		t.Error("malformed reply accepted")
	}
}

func TestClientMultilineGreeting(t *testing.T) {
	fabric := netsim.NewFabric()
	ln, err := fabric.Listen(netip.MustParseAddrPort("10.2.0.2:25"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = conn.Write([]byte("220-first line\r\n220-second line\r\n220 ready\r\n"))
		buf := make([]byte, 256)
		_, _ = conn.Read(buf)
	}()
	c, err := Dial(context.Background(), fabric, "10.2.0.2:25")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Greeting, "first line") || !strings.Contains(c.Greeting, "ready") {
		t.Errorf("greeting %q", c.Greeting)
	}
}

func TestReceivedHeaderStamping(t *testing.T) {
	var got []byte
	fixed := time.Date(2021, 10, 4, 9, 30, 0, 0, time.UTC)
	srv := &Server{
		Hostname:      "mx.stamp.example",
		StampReceived: true,
		Clock:         func() time.Time { return fixed },
		Handler: Handler{
			OnMessage: func(s *Session, msg []byte) *Reply {
				got = append([]byte(nil), msg...)
				return nil
			},
		},
	}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if err := c.Hello("sender.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail("a@sender.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rcpt("b@stamp.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Data([]byte("Subject: x\r\n\r\nbody\r\n")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	text := string(got)
	if !strings.HasPrefix(text, "Received: from sender.example (") {
		t.Fatalf("no trace header:\n%s", text)
	}
	for _, want := range []string{
		"by mx.stamp.example with ESMTP",
		"Mon, 04 Oct 2021 09:30:00 +0000",
		"Subject: x",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("stamped message missing %q:\n%s", want, text)
		}
	}
}

func TestReceivedHeaderPreservesDKIM(t *testing.T) {
	// The trace header is unsigned, so stamping must not break DKIM
	// verification of the signed portion — the everyday reality DKIM's
	// header selection exists for.
	srv := &Server{Hostname: "mx.relay.example", StampReceived: true}
	var got []byte
	srv.Handler.OnMessage = func(s *Session, msg []byte) *Reply {
		got = append([]byte(nil), msg...)
		return nil
	}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if err := c.Hello("origin.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail("a@origin.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rcpt("b@relay.example"); err != nil {
		t.Fatal(err)
	}
	signed := "DKIM-Signature: v=1; a=rsa-sha256; d=origin.example; s=s1; h=From; bh=XX; b=YY\r\n" +
		"From: a@origin.example\r\n\r\nbody\r\n"
	if err := c.Data([]byte(signed)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	text := string(got)
	if !strings.HasPrefix(text, "Received:") {
		t.Fatal("no trace header")
	}
	if !strings.Contains(text, "DKIM-Signature: v=1") {
		t.Error("signature header lost")
	}
	// The signed content must be byte-identical after the stamp.
	idx := strings.Index(text, "DKIM-Signature:")
	if text[idx:] != signed {
		t.Errorf("signed portion altered:\n%q\nvs\n%q", text[idx:], signed)
	}
}
