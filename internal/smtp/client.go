package smtp

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// Dialer abstracts connection establishment, allowing clients to run
// over real sockets or the netsim fabric.
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Client is a sending-MTA SMTP client.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// Timeout bounds each command/reply exchange. Zero means 30s.
	Timeout time.Duration
	// Greeting is the server's 220 banner text.
	Greeting string
	// DidEhlo reports whether the session used EHLO (vs HELO fallback).
	DidEhlo bool
	// Extensions holds the EHLO capability lines announced.
	Extensions []string
}

// Dial connects to addr and consumes the greeting. A nil dialer uses
// real sockets.
func Dial(ctx context.Context, dialer Dialer, addr string) (*Client, error) {
	if dialer == nil {
		dialer = &net.Dialer{}
	}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("smtp: dialing %s: %w", addr, err)
	}
	c := NewClient(conn)
	code, text, err := c.readReply()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if code != 220 {
		conn.Close()
		return nil, &Error{Code: code, Message: text}
	}
	c.Greeting = text
	return c, nil
}

// NewClient wraps an established connection. The caller must consume
// the greeting (Dial does this automatically).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

// Cmd sends one command line and returns the reply. A non-2xx/3xx
// reply is returned as *Error.
func (c *Client) Cmd(format string, args ...any) (int, string, error) {
	_ = c.conn.SetDeadline(time.Now().Add(c.timeout()))
	if _, err := fmt.Fprintf(c.bw, format+"\r\n", args...); err != nil {
		return 0, "", fmt.Errorf("smtp: write: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return 0, "", fmt.Errorf("smtp: flush: %w", err)
	}
	code, text, err := c.readReply()
	if err != nil {
		return 0, "", err
	}
	if code >= 400 {
		return code, text, &Error{Code: code, Message: text}
	}
	return code, text, nil
}

// readReply consumes one (possibly multiline) reply.
func (c *Client) readReply() (int, string, error) {
	_ = c.conn.SetReadDeadline(time.Now().Add(c.timeout()))
	var lines []string
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			return 0, "", fmt.Errorf("smtp: reading reply: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if len(line) < 3 {
			return 0, "", fmt.Errorf("smtp: short reply line %q", line)
		}
		code, err := strconv.Atoi(line[:3])
		if err != nil {
			return 0, "", fmt.Errorf("smtp: bad reply code in %q", line)
		}
		text := ""
		cont := false
		if len(line) > 3 {
			cont = line[3] == '-'
			text = line[4:]
		}
		lines = append(lines, text)
		if !cont {
			return code, strings.Join(lines, "\n"), nil
		}
	}
}

// Hello negotiates EHLO, falling back to HELO when the server rejects
// it — the probe client's behaviour per paper §4.6.
func (c *Client) Hello(heloDomain string) error {
	code, text, err := c.Cmd("EHLO %s", heloDomain)
	if err == nil && code == 250 {
		c.DidEhlo = true
		if lines := strings.Split(text, "\n"); len(lines) > 1 {
			c.Extensions = lines[1:]
		}
		return nil
	}
	if smtpErr, ok := err.(*Error); ok && smtpErr.Permanent() {
		if _, _, err := c.Cmd("HELO %s", heloDomain); err != nil {
			return err
		}
		return nil
	}
	return err
}

// Mail sends MAIL FROM with the given envelope sender.
func (c *Client) Mail(from string) error {
	_, _, err := c.Cmd("MAIL FROM:<%s>", from)
	return err
}

// Rcpt sends RCPT TO with the given envelope recipient.
func (c *Client) Rcpt(to string) error {
	_, _, err := c.Cmd("RCPT TO:<%s>", to)
	return err
}

// Data sends the DATA command and, on 354, the dot-stuffed message
// followed by the terminating dot.
func (c *Client) Data(msg []byte) error {
	code, text, err := c.Cmd("DATA")
	if err != nil {
		return err
	}
	if code != 354 {
		return &Error{Code: code, Message: text}
	}
	_ = c.conn.SetWriteDeadline(time.Now().Add(c.timeout()))
	if _, err := c.bw.WriteString(DotStuff(msg)); err != nil {
		return fmt.Errorf("smtp: writing message: %w", err)
	}
	if _, err := c.bw.WriteString(".\r\n"); err != nil {
		return fmt.Errorf("smtp: terminating message: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("smtp: flushing message: %w", err)
	}
	code, text, err = c.readReply()
	if err != nil {
		return err
	}
	if code != 250 {
		return &Error{Code: code, Message: text}
	}
	return nil
}

// DataCommand sends only the DATA command and returns its reply,
// without transmitting any content — the probe client stops here and
// disconnects so no message can ever be accepted (paper §4.6).
func (c *Client) DataCommand() (int, string, error) {
	return c.Cmd("DATA")
}

// Quit ends the session politely.
func (c *Client) Quit() error {
	_, _, err := c.Cmd("QUIT")
	c.conn.Close()
	return err
}

// Abort drops the TCP connection without QUIT — how the probe client
// leaves after the DATA reply.
func (c *Client) Abort() error {
	return c.conn.Close()
}

// DotStuff prepares a message body for DATA transmission: normalizes
// line endings to CRLF and doubles leading dots (RFC 5321 §4.5.2).
func DotStuff(msg []byte) string {
	text := strings.ReplaceAll(string(msg), "\r\n", "\n")
	lines := strings.Split(text, "\n")
	var sb strings.Builder
	for i, line := range lines {
		if i == len(lines)-1 && line == "" {
			break // avoid a trailing blank line from a final newline
		}
		if strings.HasPrefix(line, ".") {
			sb.WriteByte('.')
		}
		sb.WriteString(line)
		sb.WriteString("\r\n")
	}
	return sb.String()
}
