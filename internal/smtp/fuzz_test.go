package smtp

import (
	"bufio"
	"strings"
	"testing"
)

// FuzzParseAddress feeds arbitrary MAIL FROM / RCPT TO arguments to
// the address parser. It must never panic, and every address it
// accepts must be consumable by the domain/local splitters.
func FuzzParseAddress(f *testing.F) {
	f.Add("<user@example.com>")
	f.Add("<>")
	f.Add("user@example.com SIZE=1024")
	f.Add("<unterminated")
	f.Add("<a@b> BODY=8BITMIME SMTPUTF8")
	f.Add("  <spaced@example.com>  ")
	f.Add("<@route.example:real@example.com>")
	f.Add("<user@[203.0.113.25]>")
	f.Add(strings.Repeat("<", 100))
	f.Fuzz(func(t *testing.T, arg string) {
		addr, ok := ParseAddress(arg)
		if !ok {
			return
		}
		_ = DomainOf(addr)
		_ = LocalOf(addr)
	})
}

// FuzzReadCommandLine hammers the bounded line reader with arbitrary
// byte streams. The invariants: no panic, any returned line respects
// the length cap, and the two abuse sentinels are the only non-I/O
// errors.
func FuzzReadCommandLine(f *testing.F) {
	f.Add([]byte("EHLO example.com\r\n"), 64)
	f.Add([]byte("MAIL FROM:<a@b>\n"), 16)
	f.Add([]byte(strings.Repeat("A", 4096)), 16)
	f.Add([]byte(strings.Repeat("B", 4096)+"\r\n"), 64)
	f.Add([]byte("\r\n\r\n\r\n"), 8)
	f.Add([]byte{0x00, 0xff, '\r', '\n'}, 8)
	f.Fuzz(func(t *testing.T, data []byte, max int) {
		if max <= 0 || max > 1<<16 {
			return
		}
		br := bufio.NewReaderSize(strings.NewReader(string(data)), 16)
		for {
			line, err := readCommandLine(br, max)
			if err != nil {
				break
			}
			if len(line) > max {
				t.Fatalf("readCommandLine returned %d bytes, cap %d", len(line), max)
			}
		}
	})
}
