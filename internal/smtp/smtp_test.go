package smtp

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/netsim"
)

// startServer runs a Server over the netsim fabric and returns the
// fabric plus the MTA's simulated address.
func startServer(t *testing.T, srv *Server) (*netsim.Fabric, string) {
	t.Helper()
	fabric := netsim.NewFabric()
	addr := netip.MustParseAddrPort("203.0.113.25:25")
	ln, err := fabric.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return fabric, addr.String()
}

func dial(t *testing.T, fabric *netsim.Fabric, addr string) *Client {
	t.Helper()
	c, err := Dial(context.Background(), fabric, addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 3 * time.Second
	return c
}

func TestBasicDelivery(t *testing.T) {
	var (
		mu       sync.Mutex
		gotFrom  string
		gotTo    []string
		gotMsg   string
		gotIP    netip.Addr
		gotHelo  string
		usedEhlo bool
	)
	srv := &Server{
		Hostname: "mx.recipient.example",
		Handler: Handler{
			OnMessage: func(s *Session, msg []byte) *Reply {
				mu.Lock()
				defer mu.Unlock()
				gotFrom, gotTo, gotMsg = s.MailFrom, s.RcptTo, string(msg)
				gotIP, gotHelo, usedEhlo = s.ClientIP, s.Helo, s.Ehlo
				return nil
			},
		},
	}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if !strings.Contains(c.Greeting, "mx.recipient.example") {
		t.Errorf("greeting %q", c.Greeting)
	}
	if err := c.Hello("sender.example"); err != nil {
		t.Fatal(err)
	}
	if !c.DidEhlo {
		t.Error("EHLO not used")
	}
	if err := c.Mail("alice@sender.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rcpt("bob@recipient.example"); err != nil {
		t.Fatal(err)
	}
	msg := "Subject: hi\r\n\r\nbody line\r\n.leading dot\r\n"
	if err := c.Data([]byte(msg)); err != nil {
		t.Fatal(err)
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if gotFrom != "alice@sender.example" {
		t.Errorf("MailFrom %q", gotFrom)
	}
	if len(gotTo) != 1 || gotTo[0] != "bob@recipient.example" {
		t.Errorf("RcptTo %v", gotTo)
	}
	if gotMsg != msg {
		t.Errorf("message %q, want %q", gotMsg, msg)
	}
	if gotHelo != "sender.example" || !usedEhlo {
		t.Errorf("helo %q ehlo=%v", gotHelo, usedEhlo)
	}
	// The server must see the probe client's synthetic fabric address.
	if !gotIP.Is4() || gotIP.String() != "198.18.0.1" {
		t.Errorf("client IP %s", gotIP)
	}
}

func TestProbeSequenceStopsBeforeContent(t *testing.T) {
	// The paper's probe: EHLO, MAIL, RCPT, DATA, then disconnect. The
	// server must never see a message.
	var messageSeen bool
	var dataSeen bool
	srv := &Server{
		Handler: Handler{
			OnData:    func(s *Session) *Reply { dataSeen = true; return nil },
			OnMessage: func(s *Session, msg []byte) *Reply { messageSeen = true; return nil },
		},
	}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if err := c.Hello("probe.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail("spf-test@t01.m0001.spf-test.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rcpt("postmaster@target.example"); err != nil {
		t.Fatal(err)
	}
	code, _, err := c.DataCommand()
	if err != nil {
		t.Fatal(err)
	}
	if code != 354 {
		t.Errorf("DATA reply %d", code)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if !dataSeen {
		t.Error("DATA hook not reached")
	}
	if messageSeen {
		t.Error("message was delivered despite pre-content disconnect")
	}
}

func TestHeloFallback(t *testing.T) {
	// A server that rejects EHLO forces the client down to HELO.
	srv := &Server{
		Handler: Handler{
			OnHelo: func(s *Session) *Reply {
				if s.Ehlo {
					return &Reply{Code: 502, Text: "EHLO not supported"}
				}
				return nil
			},
		},
	}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if err := c.Hello("old-client.example"); err != nil {
		t.Fatal(err)
	}
	if c.DidEhlo {
		t.Error("client believes EHLO succeeded")
	}
}

func TestRejectionAtConnect(t *testing.T) {
	// 28% of NotifyMX MTAs rejected the probe citing spam/blacklists
	// before DATA (paper §6.2); the earliest point is the banner.
	srv := &Server{
		Handler: Handler{
			OnConnect: func(s *Session) *Reply {
				return &Reply{Code: 554, Text: "5.7.1 rejected: listed on spam blacklist"}
			},
		},
	}
	fabric, addr := startServer(t, srv)
	_, err := Dial(context.Background(), fabric, addr)
	if err == nil {
		t.Fatal("connect-rejected dial succeeded")
	}
	var serr *Error
	if !errors.As(err, &serr) || serr.Code != 554 || !strings.Contains(serr.Message, "spam") {
		t.Errorf("error %v", err)
	}
}

func TestRecipientRejection(t *testing.T) {
	srv := &Server{
		Handler: Handler{
			OnRcpt: func(s *Session, to string) *Reply {
				if LocalOf(to) != "postmaster" {
					return ReplyNoSuchUser
				}
				return nil
			},
		},
	}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if err := c.Hello("probe.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail("probe@test.example"); err != nil {
		t.Fatal(err)
	}
	// The paper's recipient-guessing ladder: named users fail,
	// postmaster succeeds.
	for _, user := range []string{"michael", "john.smith", "support"} {
		err := c.Rcpt(user + "@target.example")
		var serr *Error
		if !errors.As(err, &serr) || serr.Code != 550 {
			t.Errorf("RCPT %s: %v", user, err)
		}
	}
	if err := c.Rcpt("postmaster@target.example"); err != nil {
		t.Errorf("RCPT postmaster: %v", err)
	}
}

func TestMailRejectionClearsSender(t *testing.T) {
	srv := &Server{
		Handler: Handler{
			OnMail: func(s *Session, from string) *Reply {
				return &Reply{Code: 550, Text: "SPF fail"}
			},
		},
	}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if err := c.Hello("probe.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail("spoofed@victim.example"); err == nil {
		t.Fatal("rejected MAIL succeeded")
	}
	// RCPT without an accepted MAIL must be a sequence error.
	err := c.Rcpt("user@target.example")
	var serr *Error
	if !errors.As(err, &serr) || serr.Code != 503 {
		t.Errorf("RCPT after rejected MAIL: %v", err)
	}
}

func TestCommandSequenceEnforcement(t *testing.T) {
	srv := &Server{}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	// MAIL before HELO.
	_, _, err := c.Cmd("MAIL FROM:<x@example.com>")
	var serr *Error
	if !errors.As(err, &serr) || serr.Code != 503 {
		t.Errorf("MAIL before HELO: %v", err)
	}
	// DATA before MAIL.
	if err := c.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.Cmd("DATA")
	if !errors.As(err, &serr) || serr.Code != 503 {
		t.Errorf("DATA before MAIL: %v", err)
	}
	// DATA with no accepted recipients.
	if err := c.Mail("x@example.com"); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.Cmd("DATA")
	if !errors.As(err, &serr) || serr.Code != 554 {
		t.Errorf("DATA without RCPT: %v", err)
	}
}

func TestRsetNoopVrfyUnknown(t *testing.T) {
	srv := &Server{}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if err := c.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	if code, _, err := c.Cmd("NOOP"); err != nil || code != 250 {
		t.Errorf("NOOP: %d %v", code, err)
	}
	if code, _, err := c.Cmd("RSET"); err != nil || code != 250 {
		t.Errorf("RSET: %d %v", code, err)
	}
	if code, _, err := c.Cmd("VRFY someone"); err != nil || code != 252 {
		t.Errorf("VRFY: %d %v", code, err)
	}
	_, _, err := c.Cmd("BOGUS")
	var serr *Error
	if !errors.As(err, &serr) || serr.Code != 502 {
		t.Errorf("unknown verb: %v", err)
	}
}

func TestEhloExtensions(t *testing.T) {
	srv := &Server{Extensions: []string{"8BITMIME", "SIZE 10485760"}}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if err := c.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	if len(c.Extensions) != 2 || c.Extensions[0] != "8BITMIME" {
		t.Errorf("extensions %v", c.Extensions)
	}
}

func TestDotStuffing(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain\r\n", "plain\r\n"},
		{".leading\r\n", "..leading\r\n"},
		{"a\n.b\nc\n", "a\r\n..b\r\nc\r\n"},
		{"no trailing newline", "no trailing newline\r\n"},
		{"", ""},
	}
	for _, c := range cases {
		if got := DotStuff([]byte(c.in)); got != c.want {
			t.Errorf("DotStuff(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseAddress(t *testing.T) {
	cases := []struct {
		in   string
		addr string
		ok   bool
	}{
		{"<user@example.com>", "user@example.com", true},
		{" <user@example.com> SIZE=1000", "user@example.com", true},
		{"user@example.com", "user@example.com", true},
		{"user@example.com SIZE=5", "user@example.com", true},
		{"<>", "", true}, // null reverse-path
		{"<unterminated", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		addr, ok := ParseAddress(c.in)
		if addr != c.addr || ok != c.ok {
			t.Errorf("ParseAddress(%q) = %q, %v; want %q, %v", c.in, addr, ok, c.addr, c.ok)
		}
	}
}

func TestAddressHelpers(t *testing.T) {
	if DomainOf("User@Example.COM") != "example.com" {
		t.Error("DomainOf")
	}
	if DomainOf("no-at-sign") != "" || DomainOf("trailing@") != "" {
		t.Error("DomainOf edge cases")
	}
	if LocalOf("user@example.com") != "user" || LocalOf("bare") != "bare" {
		t.Error("LocalOf")
	}
}

func TestReplyFormatting(t *testing.T) {
	r := &Reply{Code: 250, Text: "first\nsecond\nlast"}
	want := "250-first\r\n250-second\r\n250 last\r\n"
	if got := r.format(); got != want {
		t.Errorf("format = %q", got)
	}
	if !ReplyOK.Positive() || ReplyNoSuchUser.Positive() {
		t.Error("Positive misclassifies")
	}
	e := &Error{Code: 550, Message: "nope"}
	if !e.Permanent() || e.Temporary() {
		t.Error("550 classification")
	}
	e = &Error{Code: 421, Message: "later"}
	if e.Permanent() || !e.Temporary() {
		t.Error("421 classification")
	}
}

func TestSessionMetaAndOnClose(t *testing.T) {
	closed := make(chan *Session, 1)
	srv := &Server{
		Handler: Handler{
			OnMail: func(s *Session, from string) *Reply {
				s.Meta["spf"] = "pass"
				return nil
			},
			OnClose: func(s *Session) { closed <- s },
		},
	}
	fabric, addr := startServer(t, srv)
	c := dial(t, fabric, addr)
	if err := c.Hello("x.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail("a@b.example"); err != nil {
		t.Fatal(err)
	}
	_ = c.Quit()
	select {
	case s := <-closed:
		if s.Meta["spf"] != "pass" {
			t.Errorf("meta %v", s.Meta)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnClose never ran")
	}
}

func TestConcurrentSessions(t *testing.T) {
	srv := &Server{}
	fabric, addr := startServer(t, srv)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(context.Background(), fabric, addr)
			if err != nil {
				errs <- err
				return
			}
			c.Timeout = 3 * time.Second
			if err := c.Hello("client.example"); err != nil {
				errs <- err
				return
			}
			if err := c.Mail("a@b.example"); err != nil {
				errs <- err
				return
			}
			_ = c.Quit()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRealSocketListenAndServe(t *testing.T) {
	srv := &Server{Hostname: "real.example"}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(context.Background(), nil, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	_ = c.Quit()
}
