package smtp

import (
	"sendervalid/internal/telemetry"
)

// serverMetrics are the receiving front end's always-on instruments:
// plain atomic counters the session loop increments unconditionally,
// published only when RegisterMetrics attaches them to a registry.
type serverMetrics struct {
	sessions telemetry.Counter
	active   telemetry.Gauge
	commands telemetry.Counter
	messages telemetry.Counter
	shedded  telemetry.Counter // connections 421'd over MaxConns
	evicted  telemetry.Counter // sessions 421'd over a budget
}

// RegisterMetrics publishes the server's families under the smtp_
// namespace with the given constant labels (a fleet of simulated MTAs
// would label per MTA class, a production receiver per listener).
func (s *Server) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.MustCounter("smtp_sessions_total",
		"Sessions admitted (greeted), including greet-and-reject.",
		&s.metrics.sessions, labels...)
	reg.MustGauge("smtp_sessions_active",
		"Sessions currently being served.",
		&s.metrics.active, labels...)
	reg.MustCounter("smtp_commands_total",
		"Commands read across all sessions.",
		&s.metrics.commands, labels...)
	reg.MustCounter("smtp_messages_total",
		"DATA payloads accepted to completion.",
		&s.metrics.messages, labels...)
	reg.MustCounter("smtp_shedded_conns_total",
		"Connections 421'd at admission because the server was at MaxConns.",
		&s.metrics.shedded, labels...)
	reg.MustCounter("smtp_evicted_sessions_total",
		"Sessions 421'd for exhausting a command or error budget.",
		&s.metrics.evicted, labels...)
}
