package smtp

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestLineTooLongRejected verifies an over-long command line draws 500
// without desynchronizing the session: the next well-formed command
// still works.
func TestLineTooLongRejected(t *testing.T) {
	srv := &Server{MaxLineBytes: 64, ReadTimeout: 2 * time.Second}
	fabric, addr := startServer(t, srv)
	conn, expect := rawSession(t, fabric, addr)
	expect("220")
	if _, err := conn.Write([]byte("EHLO " + strings.Repeat("x", 200) + "\r\n")); err != nil {
		t.Fatal(err)
	}
	expect("500")
	_, _ = conn.Write([]byte("EHLO ok.example\r\n"))
	expect("250")
}

// TestErrorBudgetEvicts verifies the per-session error budget: a
// client that keeps drawing protocol errors is closed with 421 and
// counted as evicted.
func TestErrorBudgetEvicts(t *testing.T) {
	srv := &Server{MaxErrors: 3, ReadTimeout: 2 * time.Second}
	fabric, addr := startServer(t, srv)
	conn, expect := rawSession(t, fabric, addr)
	expect("220")
	for i := 0; i < 3; i++ {
		_, _ = conn.Write([]byte("BOGUS\r\n"))
		expect("502")
	}
	// The budget-exhausting error draws 421 instead of 502.
	_, _ = conn.Write([]byte("BOGUS\r\n"))
	expect("421")
	// The server closed the session: the next read fails.
	buf := make([]byte, 16)
	if n, err := conn.Read(buf); err == nil {
		t.Fatalf("read %q after 421; connection should be closed", buf[:n])
	}
	if got := srv.EvictedSessions(); got != 1 {
		t.Errorf("EvictedSessions() = %d, want 1", got)
	}
}

// TestPolicyRejectionsDoNotChargeBudget verifies 5xx policy outcomes —
// the study's measurement signal — are not mistaken for abuse: a probe
// collecting many 550s must not be evicted.
func TestPolicyRejectionsDoNotChargeBudget(t *testing.T) {
	srv := &Server{
		MaxErrors:   2,
		ReadTimeout: 2 * time.Second,
		Handler: Handler{
			OnRcpt: func(s *Session, to string) *Reply { return ReplyNoSuchUser },
		},
	}
	fabric, addr := startServer(t, srv)
	conn, expect := rawSession(t, fabric, addr)
	expect("220")
	_, _ = conn.Write([]byte("EHLO probe.example\r\n"))
	expect("250")
	_, _ = conn.Write([]byte("MAIL FROM:<p@probe.example>\r\n"))
	expect("250")
	for i := 0; i < 6; i++ {
		_, _ = conn.Write([]byte("RCPT TO:<nobody@x.example>\r\n"))
		expect("550") // rejection, not eviction, every time
	}
	if got := srv.EvictedSessions(); got != 0 {
		t.Errorf("EvictedSessions() = %d after policy rejections, want 0", got)
	}
}

// TestCommandBudgetEvicts bounds total commands per session so a
// well-formed but endless command stream cannot hold a connection
// forever.
func TestCommandBudgetEvicts(t *testing.T) {
	srv := &Server{MaxCommands: 4, ReadTimeout: 2 * time.Second}
	fabric, addr := startServer(t, srv)
	conn, expect := rawSession(t, fabric, addr)
	expect("220")
	for i := 0; i < 4; i++ {
		_, _ = conn.Write([]byte("NOOP\r\n"))
		expect("250")
	}
	_, _ = conn.Write([]byte("NOOP\r\n"))
	expect("421")
}

// TestUnterminatedLineFloodEvicts streams bytes with no line ending —
// the slowloris-flavored flood — and expects eviction rather than
// unbounded buffering.
func TestUnterminatedLineFloodEvicts(t *testing.T) {
	srv := &Server{MaxLineBytes: 64, ReadTimeout: 2 * time.Second}
	fabric, addr := startServer(t, srv)
	conn, expect := rawSession(t, fabric, addr)
	expect("220")
	// Flood limit is 64× the line limit; send well past it.
	chunk := []byte(strings.Repeat("A", 1024))
	for i := 0; i < 16; i++ {
		if _, err := conn.Write(chunk); err != nil {
			break // server may already have hung up
		}
	}
	expect("421")
}

// TestMaxConnsSheds verifies the connection cap: connections over the
// cap get 421 immediately and are counted, while admitted sessions
// keep working.
func TestMaxConnsSheds(t *testing.T) {
	srv := &Server{MaxConns: 2, ReadTimeout: 2 * time.Second}
	fabric, addr := startServer(t, srv)

	c1, expect1 := rawSession(t, fabric, addr)
	expect1("220")
	_, expect2 := rawSession(t, fabric, addr)
	expect2("220")

	// Third connection is over the cap.
	_, expect3 := rawSession(t, fabric, addr)
	expect3("421")
	if got := srv.SheddedConns(); got != 1 {
		t.Errorf("SheddedConns() = %d, want 1", got)
	}

	// Admitted sessions are unaffected by the shed.
	_, _ = c1.Write([]byte("EHLO ok.example\r\n"))
	expect1("250")

	// Releasing a slot readmits new connections.
	_, _ = c1.Write([]byte("QUIT\r\n"))
	expect1("221")
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := fabric.DialContext(context.Background(), "tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 64)
		n, err := conn.Read(buf)
		if err == nil && strings.HasPrefix(string(buf[:n]), "220") {
			conn.Close()
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("freed connection slot was never readmitted")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
