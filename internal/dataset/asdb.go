package dataset

import (
	"fmt"
	"net/netip"
	"sort"
)

// ASDB maps IP addresses to autonomous systems through a longest-
// prefix-match table, the role CAIDA's Routeviews prefix-to-AS dataset
// plays in the paper (§4.2). The table is built from a generated
// population's address allocations, so analyses can attribute observed
// addresses without reaching into dataset structs — the same indirection
// the real study's pipeline has.
type ASDB struct {
	v4 []prefixEntry
	v6 []prefixEntry
}

type prefixEntry struct {
	prefix netip.Prefix
	asn    int
	name   string
}

// ASInfo is one lookup result.
type ASInfo struct {
	ASN  int
	Name string
}

// BuildASDB derives the prefix table from a population: one announced
// prefix per (AS, address block) actually in use.
func BuildASDB(pop *Population) *ASDB {
	db := &ASDB{}
	seen4 := map[netip.Prefix]bool{}
	seen6 := map[netip.Prefix]bool{}
	for _, m := range pop.MTAs {
		if m.Addr4.IsValid() {
			p, err := m.Addr4.Prefix(16)
			if err == nil && !seen4[p] {
				seen4[p] = true
				db.v4 = append(db.v4, prefixEntry{prefix: p, asn: m.ASN, name: m.ASName})
			}
		}
		if m.Addr6.IsValid() {
			p, err := m.Addr6.Prefix(32)
			if err == nil && !seen6[p] {
				seen6[p] = true
				db.v6 = append(db.v6, prefixEntry{prefix: p, asn: m.ASN, name: m.ASName})
			}
		}
	}
	sortPrefixes(db.v4)
	sortPrefixes(db.v6)
	return db
}

func sortPrefixes(entries []prefixEntry) {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].prefix.Addr().Less(entries[j].prefix.Addr())
	})
}

// Lookup maps an address to its announcing AS.
func (db *ASDB) Lookup(addr netip.Addr) (ASInfo, bool) {
	table := db.v4
	if addr.Is6() && !addr.Is4In6() {
		table = db.v6
	}
	addr = addr.Unmap()
	// Binary search for the candidate prefix, then verify containment.
	i := sort.Search(len(table), func(i int) bool {
		return addr.Less(table[i].prefix.Addr())
	})
	for _, idx := range []int{i - 1, i} {
		if idx >= 0 && idx < len(table) && table[idx].prefix.Contains(addr) {
			return ASInfo{ASN: table[idx].asn, Name: table[idx].name}, true
		}
	}
	return ASInfo{}, false
}

// Size returns the number of announced prefixes (v4, v6).
func (db *ASDB) Size() (int, int) { return len(db.v4), len(db.v6) }

// String summarizes the table.
func (db *ASDB) String() string {
	return fmt.Sprintf("asdb: %d v4 prefixes, %d v6 prefixes", len(db.v4), len(db.v6))
}
