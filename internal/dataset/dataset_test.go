package dataset

import (
	"math"
	"net/netip"
	"testing"
)

// smallSpec shrinks a paper spec for fast unit testing while keeping
// its distributions.
func smallSpec(spec Spec, n int) Spec {
	spec.NumDomains = n
	if spec.LocalDomains > 0 {
		spec.LocalDomains = 3
	}
	if spec.AlexaTop1M > 0 {
		spec.AlexaTop1M = n / 9
		spec.AlexaTop1K = n / 300
	}
	return spec
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallSpec(NotifyEmailSpec(7), 500))
	b := Generate(smallSpec(NotifyEmailSpec(7), 500))
	if len(a.Domains) != len(b.Domains) || len(a.MTAs) != len(b.MTAs) {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := range a.Domains {
		if a.Domains[i].Name != b.Domains[i].Name ||
			a.Domains[i].QueryCount != b.Domains[i].QueryCount ||
			a.Domains[i].AlexaRank != b.Domains[i].AlexaRank {
			t.Fatalf("domain %d differs", i)
		}
	}
	c := Generate(smallSpec(NotifyEmailSpec(8), 500))
	same := true
	for i := range a.Domains {
		if a.Domains[i].QueryCount != c.Domains[i].QueryCount {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical query counts")
	}
}

func TestGenerateSizes(t *testing.T) {
	pop := Generate(smallSpec(NotifyEmailSpec(1), 2000))
	if len(pop.Domains) != 2000 {
		t.Errorf("domains: %d", len(pop.Domains))
	}
	if len(pop.MTAs) == 0 || len(pop.MTAs) > 2*2000 {
		t.Errorf("MTAs: %d", len(pop.MTAs))
	}
	for _, d := range pop.Domains {
		if len(d.MTAs) == 0 {
			t.Fatalf("domain %s has no MTAs", d.Name)
		}
		if d.ID == "" || d.Name == "" || d.TLD == "" {
			t.Fatalf("domain incomplete: %+v", d)
		}
	}
	for _, m := range pop.MTAs {
		if !m.Addr4.IsValid() {
			t.Fatalf("MTA %s lacks IPv4", m.ID)
		}
	}
}

func TestTLDDistributionMatchesTable1(t *testing.T) {
	pop := Generate(smallSpec(NotifyEmailSpec(2), 20000))
	shares := map[string]float64{}
	for _, s := range pop.TLDShares() {
		shares[s.TLD] = s.Weight
	}
	for _, want := range NotifyEmailTLDs {
		got := shares[want.TLD]
		if math.Abs(got-want.Weight) > 0.02 {
			t.Errorf("TLD %s share %.3f, want ≈ %.3f", want.TLD, got, want.Weight)
		}
	}
	// com must be the most common, as in Table 1.
	if top := pop.TLDShares()[0]; top.TLD != "com" {
		t.Errorf("top TLD %s", top.TLD)
	}
}

func TestASDistributionMatchesTable3(t *testing.T) {
	pop := Generate(smallSpec(TwoWeekMXSpec(3), 20000))
	shares := map[int]float64{}
	for _, s := range pop.ASShares() {
		shares[s.ASN] = s.DomainShare
	}
	for _, want := range TwoWeekMXASes[:4] {
		got := shares[want.ASN]
		if math.Abs(got-want.DomainShare) > 0.03 {
			t.Errorf("AS%d share %.3f, want ≈ %.3f", want.ASN, got, want.DomainShare)
		}
	}
	top := pop.ASShares()[0]
	if top.ASN != 15169 {
		t.Errorf("top AS is %d (%s), want Google 15169", top.ASN, top.Name)
	}
}

func TestProviderMTASharing(t *testing.T) {
	// Google/Microsoft-grade consolidation: far fewer MTAs than
	// domains in TwoWeekMX (paper Table 2: 22,548 domains, 11,137 MTAs).
	pop := Generate(smallSpec(TwoWeekMXSpec(4), 10000))
	ratio := float64(len(pop.MTAs)) / float64(len(pop.Domains))
	if ratio > 0.75 {
		t.Errorf("MTA:domain ratio %.2f — not enough consolidation", ratio)
	}
	if ratio < 0.2 {
		t.Errorf("MTA:domain ratio %.2f — implausibly consolidated", ratio)
	}
}

func TestV6Fraction(t *testing.T) {
	pop := Generate(smallSpec(NotifyEmailSpec(5), 10000))
	v4, v6 := pop.CountV4V6()
	if v4 != len(pop.MTAs) {
		t.Errorf("v4 count %d of %d", v4, len(pop.MTAs))
	}
	frac := float64(v6) / float64(v4)
	want := float64(NotifyEmailMTAsV6) / float64(NotifyEmailMTAsV4)
	if math.Abs(frac-want) > 0.03 {
		t.Errorf("v6 fraction %.3f, want ≈ %.3f", frac, want)
	}
}

func TestProvidersIncluded(t *testing.T) {
	pop := Generate(smallSpec(NotifyEmailSpec(6), 1000))
	found := map[string]*Domain{}
	for _, d := range pop.Domains {
		if d.Provider != nil {
			found[d.Name] = d
		}
	}
	if len(found) != len(Providers) {
		t.Fatalf("%d provider domains, want %d", len(found), len(Providers))
	}
	g := found["gmail.com"]
	if g == nil || !g.Provider.SPF || !g.Provider.DMARC {
		t.Errorf("gmail.com: %+v", g)
	}
	for _, m := range g.MTAs {
		if m.Tier != TierProvider {
			t.Errorf("provider MTA tier %v", m.Tier)
		}
	}
	q := found["qq.com"]
	if q == nil || q.Provider.SPF {
		t.Errorf("qq.com: %+v", q)
	}
}

func TestAlexaRanks(t *testing.T) {
	spec := smallSpec(NotifyEmailSpec(9), 9000)
	pop := Generate(spec)
	var top1M, top1K int
	for _, d := range pop.Domains {
		if d.AlexaRank > 0 {
			top1M++
			if d.AlexaRank <= 1000 {
				top1K++
			}
		}
	}
	if top1M != spec.AlexaTop1M {
		t.Errorf("Top-1M members %d, want %d", top1M, spec.AlexaTop1M)
	}
	if top1K != spec.AlexaTop1K {
		t.Errorf("Top-1K members %d, want %d", top1K, spec.AlexaTop1K)
	}
}

func TestDeciles(t *testing.T) {
	pop := Generate(smallSpec(TwoWeekMXSpec(10), 5000))
	deciles := pop.Deciles()
	if len(deciles) != 10 {
		t.Fatalf("%d deciles", len(deciles))
	}
	total := 0
	for _, dec := range deciles {
		total += len(dec)
	}
	nonLocal := 0
	for _, d := range pop.Domains {
		if !d.Local {
			nonLocal++
		}
	}
	if total != nonLocal {
		t.Errorf("deciles cover %d of %d non-local domains", total, nonLocal)
	}
	// Ordering: decile 1's minimum demand >= decile 10's maximum.
	min1 := deciles[0][len(deciles[0])-1].QueryCount
	max10 := deciles[9][0].QueryCount
	if min1 < max10 {
		t.Errorf("decile ordering broken: %d < %d", min1, max10)
	}
	// Local domains excluded.
	for _, dec := range deciles {
		for _, d := range dec {
			if d.Local {
				t.Fatalf("local domain %s in deciles", d.Name)
			}
		}
	}
}

func TestLocalDomainsDemand(t *testing.T) {
	pop := Generate(smallSpec(TwoWeekMXSpec(11), 3000))
	locals := 0
	for _, d := range pop.Domains {
		if d.Local {
			locals++
			if d.QueryCount < 100000 {
				t.Errorf("local domain %s demand %d", d.Name, d.QueryCount)
			}
		}
	}
	if locals != 3 {
		t.Errorf("local domains: %d", locals)
	}
}

func TestMTAAddressUniqueness(t *testing.T) {
	pop := Generate(smallSpec(TwoWeekMXSpec(12), 8000))
	seen4 := map[string]bool{}
	for _, m := range pop.MTAs {
		k := m.Addr4.String()
		if seen4[k] {
			t.Fatalf("duplicate MTA address %s", k)
		}
		seen4[k] = true
	}
}

func TestPaperScaleGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation")
	}
	pop := Generate(NotifyEmailSpec(99))
	if len(pop.Domains) != NotifyEmailDomains {
		t.Errorf("domains %d", len(pop.Domains))
	}
	pop2 := Generate(TwoWeekMXSpec(99))
	if len(pop2.Domains) != TwoWeekMXDomains {
		t.Errorf("domains %d", len(pop2.Domains))
	}
	// TwoWeekMX: roughly half as many MTAs as domains (Table 2).
	ratio := float64(len(pop2.MTAs)) / float64(len(pop2.Domains))
	if ratio < 0.25 || ratio > 0.75 {
		t.Errorf("TwoWeekMX MTA ratio %.2f", ratio)
	}
}

func TestASDBLookup(t *testing.T) {
	pop := Generate(smallSpec(TwoWeekMXSpec(21), 6000))
	db := BuildASDB(pop)
	v4, v6 := db.Size()
	if v4 == 0 {
		t.Fatalf("empty ASDB: %s", db)
	}
	// Every MTA's addresses resolve to its own AS — the CAIDA-style
	// indirection must agree with ground truth.
	for _, m := range pop.MTAs {
		info, ok := db.Lookup(m.Addr4)
		if !ok {
			t.Fatalf("no AS for %s (%s)", m.Addr4, m.ID)
		}
		if info.ASN != m.ASN {
			t.Fatalf("AS for %s: got %d, want %d", m.Addr4, info.ASN, m.ASN)
		}
		if m.Addr6.IsValid() {
			info6, ok := db.Lookup(m.Addr6)
			if !ok || info6.ASN != m.ASN {
				t.Fatalf("v6 AS for %s: %v %v", m.Addr6, info6, ok)
			}
		}
	}
	if v6 == 0 {
		t.Error("no v6 prefixes despite v6 MTAs")
	}
	// Unknown space misses.
	if _, ok := db.Lookup(netip.MustParseAddr("198.51.100.1")); ok {
		t.Error("unallocated address resolved")
	}
	if _, ok := db.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Error("unallocated v6 address resolved")
	}
}
