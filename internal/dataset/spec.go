// Package dataset synthesizes the measurement study's target
// populations. The paper's raw data — 26,695 vulnerability-notification
// recipient domains (NotifyEmail/NotifyMX) and 22,548 domains from two
// weeks of BYU MX query logs (TwoWeekMX) — is not public, so this
// package generates populations whose observable joint distributions
// match what the paper reports: dataset sizes and IPv4/IPv6 MTA splits
// (Table 2), TLD shares (Table 1), AS shares with provider-grade MTA
// sharing (Table 3), per-domain MX-query demand for the decile
// analysis (Table 5), Alexa-style popularity ranks (Table 7), and the
// 19 named mail providers of Table 6. Generation is deterministic for
// a given seed.
package dataset

// TLDWeight is one entry of a TLD popularity table.
type TLDWeight struct {
	TLD    string
	Weight float64 // fraction of domains
}

// NotifyEmailTLDs reproduces Table 1 (left): the top-10 TLD shares of
// the NotifyEmail set; the remainder spreads over 249 more TLDs.
var NotifyEmailTLDs = []TLDWeight{
	{"com", 0.26}, {"net", 0.13}, {"ru", 0.083}, {"pl", 0.050},
	{"br", 0.045}, {"de", 0.040}, {"ua", 0.025}, {"it", 0.019},
	{"cz", 0.016}, {"ro", 0.016},
}

// TwoWeekMXTLDs reproduces Table 1 (right).
var TwoWeekMXTLDs = []TLDWeight{
	{"com", 0.49}, {"org", 0.17}, {"edu", 0.090}, {"net", 0.063},
	{"us", 0.036}, {"gov", 0.011}, {"uk", 0.011}, {"cam", 0.010},
	{"ca", 0.0076}, {"de", 0.0066},
}

// ASWeight is one entry of an AS popularity table.
type ASWeight struct {
	ASN  int
	Name string
	// DomainShare is the fraction of domains with an MTA in this AS.
	DomainShare float64
	// MTAPool is how many distinct MTA hosts the AS operates; small
	// pools model providers that serve many domains from few MTAs.
	MTAPool int
}

// NotifyEmailASes reproduces Table 3 (left): the top-10 ASes by domain
// share; the long tail spreads across 10,937 total ASes.
var NotifyEmailASes = []ASWeight{
	{16509, "Amazon", 0.023, 400},
	{26211, "Proofpoint", 0.017, 60},
	{22843, "Proofpoint", 0.016, 60},
	{46606, "Unified Layer", 0.013, 120},
	{16276, "OVH", 0.0095, 200},
	{24940, "Hetzner", 0.0092, 200},
	{16417, "IronPort", 0.0091, 80},
	{14618, "Amazon", 0.0088, 300},
	{12824, "home.pl", 0.0054, 60},
	{52129, "Proofpoint", 0.0043, 40},
}

// NotifyEmailTotalASes is the total AS count of the NotifyEmail set.
const NotifyEmailTotalASes = 10937

// TwoWeekMXASes reproduces Table 3 (right). Google and Microsoft host
// half of the domains from comparatively small MTA pools, which drives
// the domain:MTA ratio of Table 2 (22,548 domains on 11,137 MTAs).
var TwoWeekMXASes = []ASWeight{
	{15169, "Google", 0.32, 120},
	{8075, "Microsoft", 0.20, 150},
	{16509, "Amazon", 0.043, 300},
	{22843, "Proofpoint", 0.041, 80},
	{26211, "Proofpoint", 0.032, 60},
	{30031, "Mimecast", 0.023, 60},
	{14618, "Amazon", 0.017, 200},
	{26496, "GoDaddy", 0.016, 250},
	{46606, "Unified Layer", 0.013, 120},
	{16417, "IronPort", 0.012, 80},
}

// TwoWeekMXTotalASes is the total AS count of the TwoWeekMX set.
const TwoWeekMXTotalASes = 1795

// Paper dataset sizes (Table 2).
const (
	NotifyEmailDomains = 26695
	NotifyMXDomains    = 26390
	TwoWeekMXDomains   = 22548

	NotifyEmailMTAsV4 = 17252
	NotifyEmailMTAsV6 = 1599
	NotifyMXMTAsV4    = 26196
	NotifyMXMTAsV6    = 2700
	TwoWeekMXMTAsV4   = 10666
	TwoWeekMXMTAsV6   = 471
)

// Provider is one of the 19 popular mail providers of Table 6, with
// the validation status the NotifyEmail experiment observed.
type Provider struct {
	Domain string
	SPF    bool
	DKIM   bool
	DMARC  bool
}

// Providers reproduces Table 6.
var Providers = []Provider{
	{"hotmail.com", true, true, true},
	{"gmail.com", true, true, true},
	{"yahoo.com", true, true, true},
	{"aol.com", true, true, true},
	{"gmx.de", true, true, false},
	{"mail.ru", true, true, true},
	{"yahoo.co.in", true, true, true},
	{"comcast.net", true, true, true},
	{"web.de", true, true, false},
	{"qq.com", false, false, false},
	{"yahoo.co.jp", true, true, true},
	{"naver.com", true, true, true},
	{"163.com", false, false, false},
	{"libero.it", true, true, true},
	{"yandex.ru", true, true, true},
	{"daum.net", true, true, false},
	{"cox.net", true, true, true},
	{"att.net", false, false, false},
	{"wp.pl", true, true, true},
}

// Alexa membership counts within NotifyEmail (Table 7).
const (
	AlexaTop1MInNotifyEmail = 2953
	AlexaTop1KInNotifyEmail = 87
)
