package dataset

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
)

// MTAInfo is one receiving mail server in a population.
type MTAInfo struct {
	// ID is the MTA identifier used in probe From addresses.
	ID string
	// Hostname is the MX host name.
	Hostname string
	// Addr4 is the MTA's IPv4 address (always valid).
	Addr4 netip.Addr
	// Addr6 is the MTA's IPv6 address; invalid when v4-only.
	Addr6 netip.Addr
	// ASN and ASName attribute the MTA's addresses (Table 3).
	ASN    int
	ASName string
	// Tier biases the profile sampling (see Tier constants).
	Tier Tier
	// ProfileSeed makes per-MTA behaviour sampling deterministic.
	ProfileSeed int64
}

// Tier classifies an MTA for profile-rate adjustment.
type Tier int

// Tiers.
const (
	// TierGeneral is the default population.
	TierGeneral Tier = iota
	// TierTop1M marks MTAs serving Alexa-Top-1M domains, which the
	// paper found validate at higher rates (Table 7).
	TierTop1M
	// TierTop1K marks MTAs serving Alexa-Top-1K domains.
	TierTop1K
	// TierProvider marks the named providers of Table 6, whose
	// validation status is pinned rather than sampled.
	TierProvider
)

// Domain is one email recipient domain in a population.
type Domain struct {
	// Name is the registrable domain name.
	Name string
	// ID is the domainid label used in NotifyEmail From addresses.
	ID string
	// TLD is the top-level domain.
	TLD string
	// MTAs are the domain's designated mail servers, preference order.
	MTAs []*MTAInfo
	// QueryCount is the MX-query demand over the collection window
	// (drives the Table 5 decile analysis).
	QueryCount int
	// AlexaRank is the domain's popularity rank; 0 means unranked.
	AlexaRank int
	// Local marks institution-local domains (the byu.edu analogue),
	// excluded from the decile analysis per §6.3.
	Local bool
	// Provider points at the Table 6 provider entry when this domain
	// is one of the 19, else nil.
	Provider *Provider
}

// Population is a complete generated dataset.
type Population struct {
	// Name labels the dataset ("NotifyEmail", "TwoWeekMX").
	Name    string
	Domains []*Domain
	// MTAs lists the unique MTAs across all domains.
	MTAs []*MTAInfo
	// TotalASes is the number of distinct ASes represented.
	TotalASes int
}

// Spec parameterizes generation.
type Spec struct {
	// Name labels the population.
	Name string
	// NumDomains is the domain count (e.g. NotifyEmailDomains).
	NumDomains int
	// TLDs is the head of the TLD distribution; the remainder is
	// spread across TailTLDs synthetic TLDs.
	TLDs     []TLDWeight
	TailTLDs int
	// ASes is the head of the AS distribution; the remainder spreads
	// across TailASes single-MTA hosting ASes.
	ASes     []ASWeight
	TailASes int
	// V6Fraction is the fraction of MTAs that also have an IPv6
	// address.
	V6Fraction float64
	// SharedMTAFraction is the chance a tail-AS domain shares an MTA
	// with the previous tail domain in the same AS.
	SharedMTAFraction float64
	// IncludeProviders adds the 19 Table 6 provider domains.
	IncludeProviders bool
	// AlexaTop1M / AlexaTop1K set how many domains receive popularity
	// ranks (Table 7).
	AlexaTop1M int
	AlexaTop1K int
	// LocalDomains adds institution-local domains with outsized query
	// counts (the byu.edu analogue, 27 domains ≈ 0.12%).
	LocalDomains int
	// Seed drives all randomness.
	Seed int64
}

// NotifyEmailSpec returns the paper-calibrated spec for the
// NotifyEmail/NotifyMX population.
func NotifyEmailSpec(seed int64) Spec {
	return Spec{
		Name:              "NotifyEmail",
		NumDomains:        NotifyEmailDomains,
		TLDs:              NotifyEmailTLDs,
		TailTLDs:          249,
		ASes:              NotifyEmailASes,
		TailASes:          NotifyEmailTotalASes - len(NotifyEmailASes),
		V6Fraction:        float64(NotifyEmailMTAsV6) / float64(NotifyEmailMTAsV4),
		SharedMTAFraction: 0.35,
		IncludeProviders:  true,
		AlexaTop1M:        AlexaTop1MInNotifyEmail,
		AlexaTop1K:        AlexaTop1KInNotifyEmail,
		Seed:              seed,
	}
}

// TwoWeekMXSpec returns the paper-calibrated spec for the TwoWeekMX
// population.
func TwoWeekMXSpec(seed int64) Spec {
	return Spec{
		Name:              "TwoWeekMX",
		NumDomains:        TwoWeekMXDomains,
		TLDs:              TwoWeekMXTLDs,
		TailTLDs:          208,
		ASes:              TwoWeekMXASes,
		TailASes:          TwoWeekMXTotalASes - len(TwoWeekMXASes),
		V6Fraction:        float64(TwoWeekMXMTAsV6) / float64(TwoWeekMXMTAsV4),
		SharedMTAFraction: 0.55,
		LocalDomains:      27,
		Seed:              seed,
	}
}

// Generate builds a deterministic population from the spec.
func Generate(spec Spec) *Population {
	rng := rand.New(rand.NewSource(spec.Seed))
	pop := &Population{Name: spec.Name}

	gen := &generator{
		spec:    spec,
		rng:     rng,
		pop:     pop,
		mtaByAS: make(map[int][]*MTAInfo),
		asSeen:  make(map[int]bool),
	}

	// Provider domains first so their fixed MTAs exist.
	if spec.IncludeProviders {
		for i := range Providers {
			gen.addProviderDomain(&Providers[i])
		}
	}
	for len(pop.Domains) < spec.NumDomains-spec.LocalDomains {
		gen.addDomain(false)
	}
	for i := 0; i < spec.LocalDomains; i++ {
		gen.addDomain(true)
	}
	gen.assignQueryCounts()
	gen.assignAlexaRanks()
	pop.TotalASes = len(gen.asSeen)
	return pop
}

type generator struct {
	spec        Spec
	rng         *rand.Rand
	pop         *Population
	mtaByAS     map[int][]*MTAInfo
	asSeen      map[int]bool
	asIndex     map[int]int
	nextMTA     int
	nextDom     int
	lastTailMTA map[int]*MTAInfo
}

// indexOf assigns each distinct AS a unique address-block index, so
// every AS announces its own /16 (v4) and /32 (v6) — the property the
// ASDB prefix table depends on.
func (g *generator) indexOf(asn int) int {
	if g.asIndex == nil {
		g.asIndex = make(map[int]int)
	}
	idx, ok := g.asIndex[asn]
	if !ok {
		idx = len(g.asIndex)
		g.asIndex[asn] = idx
	}
	return idx
}

// pickTLD draws a TLD from the head distribution or the tail.
func (g *generator) pickTLD() string {
	x := g.rng.Float64()
	for _, tw := range g.spec.TLDs {
		if x < tw.Weight {
			return tw.TLD
		}
		x -= tw.Weight
	}
	return fmt.Sprintf("tld%03d", g.rng.Intn(g.spec.TailTLDs))
}

// pickAS draws an AS from the head distribution or the tail.
func (g *generator) pickAS() ASWeight {
	x := g.rng.Float64()
	for _, aw := range g.spec.ASes {
		if x < aw.DomainShare {
			return aw
		}
		x -= aw.DomainShare
	}
	tail := g.rng.Intn(g.spec.TailASes)
	return ASWeight{
		ASN:     400000 + tail,
		Name:    fmt.Sprintf("AS-tail-%05d", tail),
		MTAPool: 0, // per-domain MTAs
	}
}

// newMTA mints an MTA in the given AS.
func (g *generator) newMTA(as ASWeight, tier Tier) *MTAInfo {
	id := g.nextMTA
	g.nextMTA++
	g.asSeen[as.ASN] = true
	asIdx := g.indexOf(as.ASN)
	a4 := netip.AddrFrom4([4]byte{
		byte(24 + asIdx/256%64), byte(asIdx % 256),
		byte(id / 250 % 250), byte(2 + id%250),
	})
	var a6 netip.Addr
	if g.rng.Float64() < g.spec.V6Fraction {
		a6 = netip.AddrFrom16([16]byte{
			0xfd, 0x00,
			byte(asIdx >> 8), byte(asIdx),
			byte(id >> 16), byte(id >> 8), byte(id),
			0, 0, 0, 0, 0, 0, 0, 0, 0x25,
		})
	}
	m := &MTAInfo{
		ID:          fmt.Sprintf("m%06d", id),
		Hostname:    fmt.Sprintf("mx%d.as%d.sim.example", id, as.ASN),
		Addr4:       a4,
		Addr6:       a6,
		ASN:         as.ASN,
		ASName:      as.Name,
		Tier:        tier,
		ProfileSeed: g.spec.Seed*1_000_003 + int64(id),
	}
	g.pop.MTAs = append(g.pop.MTAs, m)
	g.mtaByAS[as.ASN] = append(g.mtaByAS[as.ASN], m)
	return m
}

// mtaIn returns an MTA in the AS, reusing pool members for provider
// ASes and occasionally sharing tail-AS MTAs.
func (g *generator) mtaIn(as ASWeight, tier Tier) *MTAInfo {
	if as.MTAPool > 0 {
		pool := g.mtaByAS[as.ASN]
		if len(pool) >= as.MTAPool {
			return pool[g.rng.Intn(len(pool))]
		}
		// Grow the pool with probability that fills it gradually.
		if len(pool) > 0 && g.rng.Float64() > 0.3 {
			return pool[g.rng.Intn(len(pool))]
		}
		return g.newMTA(as, tier)
	}
	if g.lastTailMTA == nil {
		g.lastTailMTA = make(map[int]*MTAInfo)
	}
	if prev, ok := g.lastTailMTA[as.ASN]; ok && g.rng.Float64() < g.spec.SharedMTAFraction {
		return prev
	}
	m := g.newMTA(as, tier)
	g.lastTailMTA[as.ASN] = m
	return m
}

func (g *generator) addDomain(local bool) *Domain {
	id := g.nextDom
	g.nextDom++
	tld := g.pickTLD()
	name := fmt.Sprintf("dom%06d.%s", id, tld)
	if local {
		tld = "edu"
		name = fmt.Sprintf("dept%03d.university.edu", id)
	}
	d := &Domain{
		Name:  name,
		ID:    fmt.Sprintf("d%06d", id),
		TLD:   tld,
		Local: local,
	}
	as := g.pickAS()
	nMTAs := 1
	if g.rng.Float64() < 0.25 {
		nMTAs = 2
	}
	seen := map[string]bool{}
	for i := 0; i < nMTAs; i++ {
		m := g.mtaIn(as, TierGeneral)
		if !seen[m.ID] {
			seen[m.ID] = true
			d.MTAs = append(d.MTAs, m)
		}
	}
	g.pop.Domains = append(g.pop.Domains, d)
	return d
}

func (g *generator) addProviderDomain(p *Provider) {
	id := g.nextDom
	g.nextDom++
	tld := p.Domain[len(p.Domain)-func() int {
		for i := len(p.Domain) - 1; i >= 0; i-- {
			if p.Domain[i] == '.' {
				return len(p.Domain) - i - 1
			}
		}
		return len(p.Domain)
	}():]
	d := &Domain{
		Name:     p.Domain,
		ID:       fmt.Sprintf("d%06d", id),
		TLD:      tld,
		Provider: p,
	}
	// Providers run their own AS pools; map the big ones onto the head
	// ASes where plausible, otherwise a dedicated AS.
	as := ASWeight{ASN: 500000 + id, Name: p.Domain, MTAPool: 4}
	for i := 0; i < 2; i++ {
		d.MTAs = append(d.MTAs, g.mtaIn(as, TierProvider))
	}
	g.pop.Domains = append(g.pop.Domains, d)
}

// assignQueryCounts draws per-domain MX-query demand from a Zipf-like
// distribution, with local domains pinned to the extreme head
// (paper §6.3: byu.edu names dominated the top decile).
func (g *generator) assignQueryCounts() {
	zipf := rand.NewZipf(g.rng, 1.3, 4, 200_000)
	for _, d := range g.pop.Domains {
		d.QueryCount = 1 + int(zipf.Uint64())
		if d.Local {
			d.QueryCount = 500_000 + g.rng.Intn(500_000)
		}
		if d.Provider != nil {
			d.QueryCount += 50_000 // providers are high-demand
		}
	}
}

// assignAlexaRanks distributes popularity ranks: providers first, then
// random domains, matching the paper's membership counts.
func (g *generator) assignAlexaRanks() {
	if g.spec.AlexaTop1M == 0 {
		return
	}
	candidates := make([]*Domain, 0, len(g.pop.Domains))
	for _, d := range g.pop.Domains {
		if !d.Local {
			candidates = append(candidates, d)
		}
	}
	g.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	// Providers are all in the Top 1K.
	ranked := 0
	for _, d := range g.pop.Domains {
		if d.Provider != nil && ranked < g.spec.AlexaTop1K {
			d.AlexaRank = 1 + ranked*10
			ranked++
		}
	}
	for _, d := range candidates {
		if ranked >= g.spec.AlexaTop1M {
			break
		}
		if d.AlexaRank != 0 {
			continue
		}
		if ranked < g.spec.AlexaTop1K {
			d.AlexaRank = 1 + ranked*10
		} else {
			d.AlexaRank = 1001 + (ranked-g.spec.AlexaTop1K)*330
		}
		ranked++
	}
	// Upgrade MTA tiers from their best domain's rank.
	for _, d := range g.pop.Domains {
		tier := TierGeneral
		switch {
		case d.Provider != nil:
			tier = TierProvider
		case d.AlexaRank > 0 && d.AlexaRank <= 1000:
			tier = TierTop1K
		case d.AlexaRank > 0:
			tier = TierTop1M
		}
		for _, m := range d.MTAs {
			if tier > m.Tier {
				m.Tier = tier
			}
		}
	}
}

// Deciles splits domains into 10 groups by descending query count,
// excluding local domains (paper §6.3). Decile 1 holds the most
// queried domains.
func (p *Population) Deciles() [][]*Domain {
	var eligible []*Domain
	for _, d := range p.Domains {
		if !d.Local {
			eligible = append(eligible, d)
		}
	}
	sort.SliceStable(eligible, func(i, j int) bool {
		return eligible[i].QueryCount > eligible[j].QueryCount
	})
	out := make([][]*Domain, 10)
	n := len(eligible)
	for i := 0; i < 10; i++ {
		lo, hi := i*n/10, (i+1)*n/10
		out[i] = eligible[lo:hi]
	}
	return out
}

// TLDShares returns the fraction of domains per TLD, descending.
func (p *Population) TLDShares() []TLDWeight {
	counts := make(map[string]int)
	for _, d := range p.Domains {
		counts[d.TLD]++
	}
	out := make([]TLDWeight, 0, len(counts))
	for tld, n := range counts {
		out = append(out, TLDWeight{TLD: tld, Weight: float64(n) / float64(len(p.Domains))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].TLD < out[j].TLD
	})
	return out
}

// ASShares returns, per AS, the fraction of domains having an MTA in
// that AS (the Table 3 statistic), descending.
func (p *Population) ASShares() []ASWeight {
	domainsInAS := make(map[int]int)
	names := make(map[int]string)
	for _, d := range p.Domains {
		seen := map[int]bool{}
		for _, m := range d.MTAs {
			if !seen[m.ASN] {
				seen[m.ASN] = true
				domainsInAS[m.ASN]++
				names[m.ASN] = m.ASName
			}
		}
	}
	out := make([]ASWeight, 0, len(domainsInAS))
	for asn, n := range domainsInAS {
		out = append(out, ASWeight{
			ASN: asn, Name: names[asn],
			DomainShare: float64(n) / float64(len(p.Domains)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DomainShare != out[j].DomainShare {
			return out[i].DomainShare > out[j].DomainShare
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// CountV4V6 returns how many MTAs have IPv4 and IPv6 addresses.
func (p *Population) CountV4V6() (v4, v6 int) {
	for _, m := range p.MTAs {
		if m.Addr4.IsValid() {
			v4++
		}
		if m.Addr6.IsValid() {
			v6++
		}
	}
	return v4, v6
}
