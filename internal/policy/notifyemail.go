package policy

import (
	"net/netip"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
)

// NotifyEmailConfig describes the DNS view published for NotifyEmail
// From domains (paper §4.3.1). Every domain <domainid>.<suffix> gets:
//
//   - an SPF policy that authenticates the real sending MTA through an
//     "a" mechanism, preceded by a 3-level include chain with 100 ms
//     response shaping — the serial-vs-parallel elicitation (§7.1);
//   - A/AAAA records for the "a" target resolving to the sender;
//   - a DKIM public key at <selector>._domainkey.<domainid>.<suffix>;
//   - a strict-reject DMARC policy at _dmarc.<domainid>.<suffix> that
//     also publishes the experiment's contact address (§5.3).
type NotifyEmailConfig struct {
	// Suffix is the zone apex, e.g. "dsav-mail.dns-lab.example.".
	Suffix string
	// SenderV4 and SenderV6 are the legitimate sending MTA's addresses
	// (at least one must be valid).
	SenderV4 netip.Addr
	SenderV6 netip.Addr
	// DKIMSelector and DKIMKeyRecord publish the signing key.
	DKIMSelector  string
	DKIMKeyRecord string
	// Contact is the mailbox published in rua= for attribution.
	Contact string
	// TimeScale scales the 100 ms include-chain shaping.
	TimeScale float64
	// TTL for synthesized records.
	TTL uint32
}

func (cfg *NotifyEmailConfig) scale(d time.Duration) time.Duration {
	if cfg.TimeScale == 0 {
		return d
	}
	return time.Duration(float64(d) * cfg.TimeScale)
}

func (cfg *NotifyEmailConfig) ttl() uint32 {
	if cfg.TTL == 0 {
		return 300
	}
	return cfg.TTL
}

// SPFPolicy returns the SPF record text for a NotifyEmail domain.
func (cfg *NotifyEmailConfig) SPFPolicy(q *dnsserver.Query) string {
	return "v=spf1 include:" + dnsserver.Rejoin(q, cfg.Suffix, "l1") +
		" a:" + dnsserver.Rejoin(q, cfg.Suffix, "mta") + " -all"
}

// DMARCPolicy returns the DMARC record text for NotifyEmail domains.
func (cfg *NotifyEmailConfig) DMARCPolicy() string {
	rec := "v=DMARC1; p=reject"
	if cfg.Contact != "" {
		rec += "; rua=mailto:" + cfg.Contact
	}
	return rec
}

// Responder synthesizes the NotifyEmail DNS view. Use it as the
// Default responder of a LabelDepth-1 zone.
func (cfg *NotifyEmailConfig) Responder() dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		switch {
		case len(q.Rest) == 0 && q.Type == dns.TypeTXT:
			return dnsserver.Response{Records: []dns.RR{
				dnsserver.TXTRecord(q.Name, cfg.SPFPolicy(q), cfg.ttl()),
			}}

		case len(q.Rest) == 1 && q.Rest[0] == "l1" && q.Type == dns.TypeTXT:
			r := dnsserver.Response{Records: []dns.RR{dnsserver.TXTRecord(q.Name,
				"v=spf1 include:"+dnsserver.Rejoin(q, cfg.Suffix, "l2")+" ?all", cfg.ttl())}}
			r.Delay = cfg.scale(100 * time.Millisecond)
			return r
		case len(q.Rest) == 1 && q.Rest[0] == "l2" && q.Type == dns.TypeTXT:
			r := dnsserver.Response{Records: []dns.RR{dnsserver.TXTRecord(q.Name,
				"v=spf1 include:"+dnsserver.Rejoin(q, cfg.Suffix, "l3")+" ?all", cfg.ttl())}}
			r.Delay = cfg.scale(100 * time.Millisecond)
			return r
		case len(q.Rest) == 1 && q.Rest[0] == "l3" && q.Type == dns.TypeTXT:
			return dnsserver.Response{Records: []dns.RR{
				dnsserver.TXTRecord(q.Name, "v=spf1 ?all", cfg.ttl())}}

		case len(q.Rest) == 1 && q.Rest[0] == "mta":
			switch q.Type {
			case dns.TypeA:
				if !cfg.SenderV4.IsValid() {
					return dnsserver.Response{}
				}
				return dnsserver.Response{Records: []dns.RR{{
					Name: q.Name, Type: dns.TypeA, Class: dns.ClassINET, TTL: cfg.ttl(),
					Data: &dns.A{Addr: cfg.SenderV4},
				}}}
			case dns.TypeAAAA:
				if !cfg.SenderV6.IsValid() {
					return dnsserver.Response{}
				}
				return dnsserver.Response{Records: []dns.RR{{
					Name: q.Name, Type: dns.TypeAAAA, Class: dns.ClassINET, TTL: cfg.ttl(),
					Data: &dns.AAAA{Addr: cfg.SenderV6},
				}}}
			}

		case len(q.Rest) == 1 && q.Rest[0] == "_dmarc" && q.Type == dns.TypeTXT:
			return dnsserver.Response{Records: []dns.RR{
				dnsserver.TXTRecord(q.Name, cfg.DMARCPolicy(), cfg.ttl())}}

		case len(q.Rest) == 2 && q.Rest[1] == "_domainkey" && q.Type == dns.TypeTXT:
			if cfg.DKIMSelector != "" && q.Rest[0] == cfg.DKIMSelector && cfg.DKIMKeyRecord != "" {
				return dnsserver.Response{Records: []dns.RR{
					dnsserver.TXTRecord(q.Name, cfg.DKIMKeyRecord, cfg.ttl())}}
			}
		}
		return dnsserver.Response{}
	})
}
