package policy

import (
	"fmt"
	"strings"

	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
)

// extendedCatalog returns tests t13–t39: the remainder of the study's
// 39 policies. The paper's results sections do not report on these
// individually (§4.3.2 notes only the most interesting subset is
// discussed), but they were part of every probe run and feed the
// validator-fingerprinting future work (§8).
func extendedCatalog() []Test {
	simple := func(id, name, desc string, payload func(env *Env, q *dnsserver.Query) string) Test {
		return Test{
			ID: id, Name: name, Description: desc,
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					if q.Type == dns.TypeTXT && len(q.Rest) == 0 {
						return env.txt(q, payload(env, q))
					}
					return dnsserver.Response{}
				})
			},
		}
	}

	tests := []Test{
		// t13: redirect handling.
		{
			ID: "t13", Name: "redirect",
			Description: "a redirect= modifier; following it shows modifier support",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					switch {
					case q.Type == dns.TypeTXT && len(q.Rest) == 0:
						return env.txt(q, "v=spf1 redirect="+env.sub(q, "rd"))
					case q.Type == dns.TypeTXT && restIs(q, "rd"):
						return env.txt(q, fmt.Sprintf("v=spf1 ip4:%s -all", Unaffiliated))
					}
					return dnsserver.Response{}
				})
			},
		},
		// t14: exists with the %{i} macro — reveals macro support and
		// leaks the validator's resolver-visible client IP handling.
		{
			ID: "t14", Name: "exists-macro-i",
			Description: "exists:%{ir}.<base> probes macro expansion; the query name carries the probed client address",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					if q.Type == dns.TypeTXT && len(q.Rest) == 0 {
						return env.txt(q, "v=spf1 exists:%{ir}.x."+env.sub(q)+" ?all")
					}
					// Any expanded exists name: answer nothing (void).
					return dnsserver.Response{}
				})
			},
		},
		// t15: ptr mechanism — deprecated but still published.
		simple("t15", "ptr-mechanism",
			"a ptr mechanism; PTR traffic reveals validators that still evaluate it",
			func(env *Env, q *dnsserver.Query) string { return "v=spf1 ptr ?all" }),
		// t16: include chain of exactly 10 (at the limit, compliant
		// validators finish; off-by-one implementations permerror early).
		{
			ID: "t16", Name: "limit-boundary",
			Description: "an include chain of exactly 10 lookups probes off-by-one limit handling",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					if q.Type != dns.TypeTXT {
						return dnsserver.Response{}
					}
					depth := 0
					if len(q.Rest) == 1 {
						fmt.Sscanf(q.Rest[0], "c%d", &depth)
					}
					if depth >= 10 {
						return env.txt(q, "v=spf1 ?all")
					}
					return env.txt(q, fmt.Sprintf("v=spf1 include:%s ?all",
						env.sub(q, fmt.Sprintf("c%d", depth+1))))
				})
			},
		},
		// t17: include of a domain with no SPF record (permerror per spec).
		{
			ID: "t17", Name: "include-none",
			Description: "include of a policy-less name must permerror; lookups after it reveal tolerance",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					switch {
					case q.Type == dns.TypeTXT && len(q.Rest) == 0:
						return env.txt(q, fmt.Sprintf("v=spf1 include:%s a:%s ?all",
							env.sub(q, "nospf"), env.sub(q, "after")))
					case q.Type == dns.TypeTXT && restIs(q, "nospf"):
						return env.txt(q, "unrelated txt payload")
					case restIs(q, "after"):
						return env.addr(q, Unaffiliated, UnaffiliatedV6)
					}
					return dnsserver.Response{}
				})
			},
		},
		// t18: include loop (self-referential) — must not loop forever.
		{
			ID: "t18", Name: "include-loop",
			Description: "a self-including policy; lookup counts expose loop protection",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					if q.Type == dns.TypeTXT && len(q.Rest) == 0 {
						return env.txt(q, "v=spf1 include:"+env.sub(q)+" ?all")
					}
					return dnsserver.Response{}
				})
			},
		},
		// t19: redirect loop.
		{
			ID: "t19", Name: "redirect-loop",
			Description: "two policies redirecting to each other expose loop protection on modifiers",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					switch {
					case q.Type == dns.TypeTXT && len(q.Rest) == 0:
						return env.txt(q, "v=spf1 redirect="+env.sub(q, "peer"))
					case q.Type == dns.TypeTXT && restIs(q, "peer"):
						return env.txt(q, "v=spf1 redirect="+env.sub(q))
					}
					return dnsserver.Response{}
				})
			},
		},
		// t20–t23: qualifier variants on the all mechanism.
		simple("t20", "fail-all", "plain -all (reject everything)",
			func(env *Env, q *dnsserver.Query) string { return "v=spf1 -all" }),
		simple("t21", "softfail-all", "plain ~all",
			func(env *Env, q *dnsserver.Query) string { return "v=spf1 ~all" }),
		simple("t22", "neutral-all", "plain ?all",
			func(env *Env, q *dnsserver.Query) string { return "v=spf1 ?all" }),
		simple("t23", "pass-all", "plain +all (accept everything — an anti-pattern)",
			func(env *Env, q *dnsserver.Query) string { return "v=spf1 +all" }),
		// t24: CIDR matching.
		simple("t24", "ip4-cidr",
			"an ip4 /24 containing the documentation block tests prefix matching",
			func(env *Env, q *dnsserver.Query) string { return "v=spf1 ip4:192.0.2.0/24 -all" }),
		// t25: ip6 literal.
		simple("t25", "ip6-literal",
			"an ip6 literal plus -all tests IPv6 literal parsing",
			func(env *Env, q *dnsserver.Query) string {
				return fmt.Sprintf("v=spf1 ip6:%s/64 -all", UnaffiliatedV6)
			}),
		// t26: unknown modifier must be ignored.
		{
			ID: "t26", Name: "unknown-modifier",
			Description: "an unknown modifier before an a mechanism; the follow-up lookup shows it was ignored per spec",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					switch {
					case q.Type == dns.TypeTXT && len(q.Rest) == 0:
						return env.txt(q, fmt.Sprintf("v=spf1 future=%s a:%s ?all",
							env.sub(q, "modarg"), env.sub(q, "amech")))
					case restIs(q, "amech"):
						return env.addr(q, Unaffiliated, UnaffiliatedV6)
					}
					return dnsserver.Response{}
				})
			},
		},
		// t27: long policy split across TXT character-strings.
		{
			ID: "t27", Name: "multi-string-txt",
			Description: "a policy split across several 255-octet character-strings tests concatenation",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					switch {
					case q.Type == dns.TypeTXT && len(q.Rest) == 0:
						padding := strings.Repeat("ip4:203.0.113.77 ", 18)
						payload := "v=spf1 " + padding + "a:" + env.sub(q, "tail") + " ?all"
						return env.txt(q, payload)
					case restIs(q, "tail"):
						return env.addr(q, Unaffiliated, UnaffiliatedV6)
					}
					return dnsserver.Response{}
				})
			},
		},
		// t28: SPF (type 99) record only — deprecated; validators must
		// use TXT and find nothing.
		{
			ID: "t28", Name: "type99-only",
			Description: "the policy exists only as a type-SPF (99) record; RFC 7208 validators see none",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					if q.Type == dns.TypeSPF && len(q.Rest) == 0 {
						return dnsserver.Response{Records: []dns.RR{{
							Name: q.Name, Type: dns.TypeSPF, Class: dns.ClassINET, TTL: env.ttl(),
							Data: &dns.TXT{Strings: []string{"v=spf1 -all"}},
						}}}
					}
					return dnsserver.Response{}
				})
			},
		},
		// t29: uppercase mechanisms (must be case-insensitive).
		{
			ID: "t29", Name: "uppercase-terms",
			Description: "mechanisms in uppercase test case-insensitive term parsing",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					switch {
					case q.Type == dns.TypeTXT && len(q.Rest) == 0:
						return env.txt(q, "v=spf1 A:"+env.sub(q, "up")+" -ALL")
					case restIs(q, "up"):
						return env.addr(q, Unaffiliated, UnaffiliatedV6)
					}
					return dnsserver.Response{}
				})
			},
		},
		// t30: empty policy (just the version tag): neutral-equivalent.
		simple("t30", "empty-policy", "a bare v=spf1 with no terms",
			func(env *Env, q *dnsserver.Query) string { return "v=spf1" }),
		// t31: NXDOMAIN base — the From domain publishes nothing at all.
		{
			ID: "t31", Name: "nxdomain-base",
			Description: "the From domain does not exist; validators should return none without retries",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					return dnsserver.Response{RCode: dns.RCodeNameError}
				})
			},
		},
		// t32: slow single response just under the recommended timeout.
		{
			ID: "t32", Name: "slow-response",
			Description: "a single 5 s (scaled) response delay probes per-query patience",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					if q.Type == dns.TypeTXT && len(q.Rest) == 0 {
						r := env.txt(q, fmt.Sprintf("v=spf1 ip4:%s -all", Unaffiliated))
						r.Delay = env.scale(5 * LimitsDelay)
						return r
					}
					return dnsserver.Response{}
				})
			},
		},
		// t33: exists with the local-part macro.
		simple("t33", "exists-macro-l",
			"exists:%{l}.<base> leaks how validators expand the sender local part",
			func(env *Env, q *dnsserver.Query) string {
				return "v=spf1 exists:%{l}.lp." + env.sub(q) + " ?all"
			}),
		// t34: dual-CIDR a mechanism.
		{
			ID: "t34", Name: "dual-cidr",
			Description: "a:<name>/24//64 tests dual-CIDR parsing",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					switch {
					case q.Type == dns.TypeTXT && len(q.Rest) == 0:
						return env.txt(q, "v=spf1 a:"+env.sub(q, "dc")+"/24//64 -all")
					case restIs(q, "dc"):
						return env.addr(q, Unaffiliated, UnaffiliatedV6)
					}
					return dnsserver.Response{}
				})
			},
		},
		// t35: exactly 10 MX records (at the address-lookup limit).
		{
			ID: "t35", Name: "mx-limit-boundary",
			Description: "an mx mechanism with exactly 10 MX records probes off-by-one MX limit handling",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					switch {
					case q.Type == dns.TypeTXT && len(q.Rest) == 0:
						return env.txt(q, "v=spf1 mx:"+env.sub(q, "mxten")+" ?all")
					case q.Type == dns.TypeMX && restIs(q, "mxten"):
						var rrs []dns.RR
						for i := 0; i < 10; i++ {
							rrs = append(rrs, dns.RR{
								Name: q.Name, Type: dns.TypeMX, Class: dns.ClassINET, TTL: env.ttl(),
								Data: &dns.MX{Preference: uint16(i), Host: env.sub(q, fmt.Sprintf("h%02d", i))},
							})
						}
						return dnsserver.Response{Records: rrs}
					case len(q.Rest) == 1 && strings.HasPrefix(q.Rest[0], "h"):
						return env.addr(q, Unaffiliated, UnaffiliatedV6)
					}
					return dnsserver.Response{}
				})
			},
		},
		// t36: three void lookups (one past the recommended limit).
		{
			ID: "t36", Name: "void-boundary",
			Description: "three non-resolving a mechanisms straddle the two-void-lookup limit",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					if q.Type == dns.TypeTXT && len(q.Rest) == 0 {
						return env.txt(q, fmt.Sprintf("v=spf1 a:%s a:%s a:%s ?all",
							env.sub(q, "w1"), env.sub(q, "w2"), env.sub(q, "w3")))
					}
					return dnsserver.Response{}
				})
			},
		},
		// t37: CNAME at the policy name.
		{
			ID: "t37", Name: "cname-policy",
			Description: "the policy name is a CNAME to the real record; resolution reveals CNAME chasing",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					switch {
					case q.Type == dns.TypeTXT && len(q.Rest) == 0:
						target := env.sub(q, "real")
						return dnsserver.Response{Records: []dns.RR{
							{Name: q.Name, Type: dns.TypeCNAME, Class: dns.ClassINET, TTL: env.ttl(),
								Data: &dns.CNAME{Target: target}},
							dnsserver.TXTRecord(target, fmt.Sprintf("v=spf1 ip4:%s -all", Unaffiliated), env.ttl()),
						}}
					case q.Type == dns.TypeTXT && restIs(q, "real"):
						return env.txt(q, fmt.Sprintf("v=spf1 ip4:%s -all", Unaffiliated))
					}
					return dnsserver.Response{}
				})
			},
		},
		// t38: whitespace-heavy policy.
		simple("t38", "whitespace",
			"extra spaces between terms test tokenizer robustness",
			func(env *Env, q *dnsserver.Query) string {
				return fmt.Sprintf("v=spf1    ip4:%s     -all", Unaffiliated)
			}),
		// t39: deep redirect chain (redirects also count toward the
		// 10-lookup limit).
		{
			ID: "t39", Name: "redirect-chain",
			Description: "a 12-step redirect chain probes whether redirects count against the lookup limit",
			Build: func(env *Env) dnsserver.Responder {
				return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
					if q.Type != dns.TypeTXT {
						return dnsserver.Response{}
					}
					depth := 0
					if len(q.Rest) == 1 {
						fmt.Sscanf(q.Rest[0], "r%d", &depth)
					}
					if depth >= 12 {
						return env.txt(q, "v=spf1 ?all")
					}
					return env.txt(q, fmt.Sprintf("v=spf1 redirect=%s",
						env.sub(q, fmt.Sprintf("r%d", depth+1))))
				})
			},
		},
	}
	return tests
}
