package policy

import (
	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
)

// WithDMARC wraps a test-policy responder so that every From domain it
// serves also publishes a strict reject DMARC policy at
// _dmarc.<domain>, as the study did for all three experiments
// (paper §4.3: "A strict reject policy was published for every domain
// from which experimental email was issued"). The contact mailbox is
// published in the rua= tag for attribution (§5.3).
func WithDMARC(inner dnsserver.Responder, contact string, ttl uint32) dnsserver.Responder {
	if ttl == 0 {
		ttl = 60
	}
	record := "v=DMARC1; p=reject"
	if contact != "" {
		record += "; rua=mailto:" + contact
	}
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		if len(q.Rest) == 1 && q.Rest[0] == "_dmarc" && q.Type == dns.TypeTXT {
			return dnsserver.Response{Records: []dns.RR{
				dnsserver.TXTRecord(q.Name, record, ttl)}}
		}
		return inner.Respond(q)
	})
}

// RespondersWithDMARC builds the catalog registry with every responder
// wrapped by WithDMARC.
func RespondersWithDMARC(env *Env, contact string) map[string]dnsserver.Responder {
	out := make(map[string]dnsserver.Responder)
	for _, t := range Catalog() {
		out[t.ID] = WithDMARC(t.Build(env), contact, env.ttl())
	}
	return out
}
