package policy

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"sendervalid/internal/dnsserver"
	"sendervalid/internal/resolver"
	"sendervalid/internal/spf"
)

const suffix = "spf-test.dns-lab.example."

// probeIP is the simulated probing client address; policies are
// designed so it never matches.
var probeIP = netip.MustParseAddr("198.18.0.1")

// harness wires the full stack: catalog responders behind a live
// synthesizing DNS server, a caching stub resolver, and an SPF checker.
type harness struct {
	srv *dnsserver.Server
	log *dnsserver.QueryLog
	res *resolver.Resolver
}

func newHarness(t *testing.T, opts spf.Options) (*harness, *spf.Checker) {
	t.Helper()
	env := &Env{Suffix: suffix, TimeScale: 0.01} // 100ms -> 1ms
	log := &dnsserver.QueryLog{}
	srv := &dnsserver.Server{
		Zones: []*dnsserver.Zone{{
			Suffix:     suffix,
			Responders: RespondersWithDMARC(env, "contact@dns-lab.example"),
		}},
		Log: log,
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	res := resolver.New(resolver.Config{Server: addr.String(), Timeout: 3 * time.Second})
	if opts.Timeout == 0 {
		opts.Timeout = 10 * time.Second
	}
	return &harness{srv: srv, log: log, res: res},
		&spf.Checker{Resolver: res, Options: opts}
}

// check evaluates the given test policy for one synthetic MTA id.
func (h *harness) check(t *testing.T, c *spf.Checker, testID, mtaID string) *spf.Outcome {
	t.Helper()
	domain := testID + "." + mtaID + "." + strings.TrimSuffix(suffix, ".")
	return c.CheckHost(context.Background(), probeIP, domain,
		"spf-test@"+domain, "probe.dns-lab.example")
}

// queries returns logged query summaries ("TYPE name") for one MTA id.
func (h *harness) queries(mtaID string) []string {
	var out []string
	for _, e := range h.log.Entries() {
		if e.MTAID == mtaID {
			out = append(out, e.Type.String()+" "+e.Name)
		}
	}
	return out
}

func TestCatalogComplete(t *testing.T) {
	tests := Catalog()
	if len(tests) != 39 {
		t.Fatalf("catalog has %d tests, want 39", len(tests))
	}
	seen := map[string]bool{}
	for i, test := range tests {
		if test.ID == "" || test.Name == "" || test.Description == "" || test.Build == nil {
			t.Errorf("test %d (%s) incomplete", i, test.ID)
		}
		if seen[test.ID] {
			t.Errorf("duplicate id %s", test.ID)
		}
		seen[test.ID] = true
		want := fmt.Sprintf("t%02d", i+1)
		if test.ID != want {
			t.Errorf("test %d has id %s, want %s", i, test.ID, want)
		}
	}
	if len(ByID()) != 39 {
		t.Error("ByID size mismatch")
	}
}

func TestLimitsTreeShape(t *testing.T) {
	if got := LimitsTreeSize(); got != 46 {
		t.Errorf("limits tree has %d nodes, want 46 (paper Figure 4)", got)
	}
	if len(limitsChildren["root"]) != 8 {
		t.Errorf("L1 has %d children", len(limitsChildren["root"]))
	}
}

func TestSerialValidatorOrdering(t *testing.T) {
	h, c := newHarness(t, spf.Options{})
	out := h.check(t, c, "t01", "m0001")
	if out.Result != spf.Fail {
		t.Fatalf("t01 serial result %s (%v)", out.Result, out.Err)
	}
	qs := h.queries("m0001")
	var aIdx, l3Idx = -1, -1
	for i, q := range qs {
		if strings.HasPrefix(q, "A foo.") {
			aIdx = i
		}
		if strings.HasPrefix(q, "TXT l3.") {
			l3Idx = i
		}
	}
	if aIdx < 0 || l3Idx < 0 {
		t.Fatalf("expected queries missing: %v", qs)
	}
	if aIdx < l3Idx {
		t.Errorf("serial validator queried A before L3: %v", qs)
	}
}

func TestParallelValidatorOrdering(t *testing.T) {
	h, c := newHarness(t, spf.Options{Prefetch: true})
	out := h.check(t, c, "t01", "m0002")
	if out.Result != spf.Fail {
		t.Fatalf("t01 parallel result %s (%v)", out.Result, out.Err)
	}
	qs := h.queries("m0002")
	var aIdx, l3Idx = -1, -1
	for i, q := range qs {
		if strings.HasPrefix(q, "A foo.") && aIdx < 0 {
			aIdx = i
		}
		if strings.HasPrefix(q, "TXT l3.") {
			l3Idx = i
		}
	}
	if aIdx < 0 || l3Idx < 0 {
		t.Fatalf("expected queries missing: %v", qs)
	}
	// With prefetch the A query beats the 3-hop shaped include chain.
	if aIdx > l3Idx {
		t.Errorf("parallel validator queried A after L3: %v", qs)
	}
}

func TestLookupLimitsCompliant(t *testing.T) {
	h, c := newHarness(t, spf.Options{})
	out := h.check(t, c, "t02", "m0003")
	if out.Result != spf.PermError {
		t.Fatalf("compliant t02 result %s (%v)", out.Result, out.Err)
	}
	// Base query plus at most 10 include lookups.
	if got := len(h.queries("m0003")); got > 11 {
		t.Errorf("compliant validator issued %d queries on t02", got)
	}
}

func TestLookupLimitsViolating(t *testing.T) {
	h, c := newHarness(t, spf.Options{LookupLimit: -1, VoidLookupLimit: -1})
	out := h.check(t, c, "t02", "m0004")
	if out.Result != spf.Neutral {
		t.Fatalf("violating t02 result %s (%v)", out.Result, out.Err)
	}
	// 1 base + 46 tree nodes.
	if got := len(h.queries("m0004")); got != 47 {
		t.Errorf("violating validator issued %d queries on t02, want 47", got)
	}
}

func TestVoidLookupPolicy(t *testing.T) {
	h, c := newHarness(t, spf.Options{})
	out := h.check(t, c, "t06", "m0005")
	if out.Result != spf.PermError {
		t.Fatalf("t06 compliant: %s", out.Result)
	}
	aQueries := 0
	for _, q := range h.queries("m0005") {
		if strings.HasPrefix(q, "A v") {
			aQueries++
		}
	}
	if aQueries != 3 {
		t.Errorf("compliant validator made %d void A lookups, want 3", aQueries)
	}

	h2, c2 := newHarness(t, spf.Options{VoidLookupLimit: -1})
	if out := h2.check(t, c2, "t06", "m0006"); out.Result != spf.Neutral {
		t.Fatalf("t06 violating: %s (%v)", out.Result, out.Err)
	}
	aQueries = 0
	for _, q := range h2.queries("m0006") {
		if strings.HasPrefix(q, "A v") {
			aQueries++
		}
	}
	if aQueries != 5 {
		t.Errorf("violating validator made %d void A lookups, want 5", aQueries)
	}
}

func TestMXFallbackPolicy(t *testing.T) {
	h, c := newHarness(t, spf.Options{})
	if out := h.check(t, c, "t07", "m0007"); out.Result != spf.Neutral {
		t.Fatalf("t07 compliant: %s (%v)", out.Result, out.Err)
	}
	for _, q := range h.queries("m0007") {
		if strings.HasPrefix(q, "A nomx.") || strings.HasPrefix(q, "AAAA nomx.") {
			t.Errorf("compliant validator issued forbidden fallback: %v", q)
		}
	}

	h2, c2 := newHarness(t, spf.Options{MXFallbackA: true, VoidLookupLimit: -1})
	h2.check(t, c2, "t07", "m0008")
	found := false
	for _, q := range h2.queries("m0008") {
		if strings.HasPrefix(q, "A nomx.") {
			found = true
		}
	}
	if !found {
		t.Error("violating validator did not issue the fallback A query")
	}
}

func TestMultipleRecordsPolicy(t *testing.T) {
	h, c := newHarness(t, spf.Options{})
	if out := h.check(t, c, "t08", "m0009"); out.Result != spf.PermError {
		t.Fatalf("t08 compliant: %s", out.Result)
	}
	for _, q := range h.queries("m0009") {
		if strings.HasPrefix(q, "A one.") || strings.HasPrefix(q, "A two.") {
			t.Errorf("compliant validator followed a policy: %v", q)
		}
	}

	h2, c2 := newHarness(t, spf.Options{FollowMultipleRecords: true, VoidLookupLimit: -1})
	h2.check(t, c2, "t08", "m0010")
	one, two := false, false
	for _, q := range h2.queries("m0010") {
		if strings.HasPrefix(q, "A one.") {
			one = true
		}
		if strings.HasPrefix(q, "A two.") {
			two = true
		}
	}
	if !one || two {
		t.Errorf("follow-one validator: one=%v two=%v", one, two)
	}
}

func TestTCPFallbackPolicy(t *testing.T) {
	h, c := newHarness(t, spf.Options{})
	if out := h.check(t, c, "t09", "m0011"); out.Result != spf.Neutral {
		t.Fatalf("t09: %s (%v)", out.Result, out.Err)
	}
	sawTCP := false
	for _, e := range h.log.Entries() {
		if e.MTAID == "m0011" && e.Transport == "tcp" {
			sawTCP = true
		}
	}
	if !sawTCP {
		t.Error("no TCP retry observed")
	}
}

func TestMXLimitPolicy(t *testing.T) {
	h, c := newHarness(t, spf.Options{})
	if out := h.check(t, c, "t11", "m0012"); out.Result != spf.PermError {
		t.Fatalf("t11 compliant: %s", out.Result)
	}
	count := 0
	for _, q := range h.queries("m0012") {
		if strings.HasPrefix(q, "A mx") && !strings.HasPrefix(q, "A mxfarm") {
			count++
		}
	}
	if count != 10 {
		t.Errorf("compliant validator made %d MX-host lookups, want 10", count)
	}

	h2, c2 := newHarness(t, spf.Options{MXAddressLimit: -1, VoidLookupLimit: -1})
	h2.check(t, c2, "t11", "m0013")
	count = 0
	for _, q := range h2.queries("m0013") {
		if strings.HasPrefix(q, "A mx") && !strings.HasPrefix(q, "A mxfarm") {
			count++
		}
	}
	if count != 20 {
		t.Errorf("violating validator made %d MX-host lookups, want 20", count)
	}
}

func TestSyntaxErrorPolicies(t *testing.T) {
	h, c := newHarness(t, spf.Options{})
	if out := h.check(t, c, "t04", "m0014"); out.Result != spf.PermError {
		t.Errorf("t04 compliant: %s", out.Result)
	}
	for _, q := range h.queries("m0014") {
		if strings.HasPrefix(q, "A after.") {
			t.Error("compliant validator continued past main-policy error")
		}
	}
	h2, c2 := newHarness(t, spf.Options{IgnoreSyntaxErrors: true, VoidLookupLimit: -1})
	h2.check(t, c2, "t04", "m0015")
	found := false
	for _, q := range h2.queries("m0015") {
		if strings.HasPrefix(q, "A after.") {
			found = true
		}
	}
	if !found {
		t.Error("tolerant validator did not continue past the error")
	}

	// Child-policy error (t05): tolerant validators continue in the
	// parent, observed via the cont name.
	h3, c3 := newHarness(t, spf.Options{IgnoreSyntaxErrors: true, VoidLookupLimit: -1})
	h3.check(t, c3, "t05", "m0016")
	found = false
	for _, q := range h3.queries("m0016") {
		if strings.HasPrefix(q, "A cont.") {
			found = true
		}
	}
	if !found {
		t.Error("tolerant validator did not continue past the child error")
	}
}

func TestBaselineAndQualifierPolicies(t *testing.T) {
	h, c := newHarness(t, spf.Options{})
	cases := []struct {
		id   string
		mta  string
		want spf.Result
	}{
		{"t12", "m0020", spf.Fail},
		{"t20", "m0021", spf.Fail},
		{"t21", "m0022", spf.SoftFail},
		{"t22", "m0023", spf.Neutral},
		{"t23", "m0024", spf.Pass},
		{"t24", "m0025", spf.Fail},    // probe IP outside 192.0.2.0/24
		{"t25", "m0026", spf.Fail},    // probe is IPv4
		{"t30", "m0027", spf.Neutral}, // empty policy
		{"t31", "m0028", spf.None},    // NXDOMAIN base
		{"t38", "m0029", spf.Fail},    // whitespace tokenizing
	}
	for _, tc := range cases {
		out := h.check(t, c, tc.id, tc.mta)
		if out.Result != tc.want {
			t.Errorf("%s: %s (%v), want %s", tc.id, out.Result, out.Err, tc.want)
		}
	}
}

func TestStructuralPolicies(t *testing.T) {
	h, c := newHarness(t, spf.Options{})
	// t13 redirect: fails via the redirected policy.
	if out := h.check(t, c, "t13", "m0030"); out.Result != spf.Fail {
		t.Errorf("t13: %s (%v)", out.Result, out.Err)
	}
	// t16 boundary: exactly 10 lookups — a compliant validator finishes.
	if out := h.check(t, c, "t16", "m0031"); out.Result != spf.Neutral {
		t.Errorf("t16: %s (%v)", out.Result, out.Err)
	}
	// t17 include-none: permerror.
	if out := h.check(t, c, "t17", "m0032"); out.Result != spf.PermError {
		t.Errorf("t17: %s", out.Result)
	}
	// t18 include loop: terminates with permerror via the lookup limit.
	if out := h.check(t, c, "t18", "m0033"); out.Result != spf.PermError {
		t.Errorf("t18: %s", out.Result)
	}
	// t19 redirect loop: also bounded.
	if out := h.check(t, c, "t19", "m0034"); out.Result != spf.PermError {
		t.Errorf("t19: %s", out.Result)
	}
	// t26 unknown modifier: ignored, fails on -all... policy ends ?all.
	if out := h.check(t, c, "t26", "m0035"); out.Result != spf.Neutral {
		t.Errorf("t26: %s (%v)", out.Result, out.Err)
	}
	// t27 multi-string TXT: parses and evaluates.
	if out := h.check(t, c, "t27", "m0036"); out.Result != spf.Neutral {
		t.Errorf("t27: %s (%v)", out.Result, out.Err)
	}
	// t28 type99-only: no TXT policy, result none.
	if out := h.check(t, c, "t28", "m0037"); out.Result != spf.None {
		t.Errorf("t28: %s", out.Result)
	}
	// t29 uppercase: case-insensitive parse, fail on -ALL.
	if out := h.check(t, c, "t29", "m0038"); out.Result != spf.Fail {
		t.Errorf("t29: %s (%v)", out.Result, out.Err)
	}
	// t34 dual CIDR.
	if out := h.check(t, c, "t34", "m0039"); out.Result != spf.Fail {
		t.Errorf("t34: %s (%v)", out.Result, out.Err)
	}
	// t35 MX boundary: exactly 10 MX records evaluate cleanly.
	if out := h.check(t, c, "t35", "m0040"); out.Result != spf.Neutral {
		t.Errorf("t35: %s (%v)", out.Result, out.Err)
	}
	// t36 void boundary: 3 voids exceed the limit of 2.
	if out := h.check(t, c, "t36", "m0041"); out.Result != spf.PermError {
		t.Errorf("t36: %s", out.Result)
	}
	// t37 CNAME policy.
	if out := h.check(t, c, "t37", "m0042"); out.Result != spf.Fail {
		t.Errorf("t37: %s (%v)", out.Result, out.Err)
	}
	// t39 redirect chain: exceeds the lookup limit.
	if out := h.check(t, c, "t39", "m0043"); out.Result != spf.PermError {
		t.Errorf("t39: %s", out.Result)
	}
}

func TestDMARCWrapping(t *testing.T) {
	h, _ := newHarness(t, spf.Options{})
	// Query the DMARC record of a t12 From domain directly through the
	// resolver stack.
	name := "_dmarc.t12.m0050." + suffix
	txts, err := h.res.LookupTXT(context.Background(), name)
	if err != nil || len(txts) != 1 {
		t.Fatalf("DMARC lookup: %v, %v", txts, err)
	}
	if !strings.HasPrefix(txts[0], "v=DMARC1; p=reject") {
		t.Errorf("DMARC record %q", txts[0])
	}
	if !strings.Contains(txts[0], "mailto:contact@dns-lab.example") {
		t.Errorf("contact missing from %q", txts[0])
	}
	// The query is attributed to the right MTA and test.
	entries := h.log.ByMTA()["m0050"]
	if len(entries) != 1 || entries[0].TestID != "t12" || entries[0].Rest[0] != "_dmarc" {
		t.Errorf("attribution: %+v", entries)
	}
}

func TestNotifyEmailResponder(t *testing.T) {
	cfg := &NotifyEmailConfig{
		Suffix:        "dsav-mail.dns-lab.example.",
		SenderV4:      netip.MustParseAddr("203.0.113.10"),
		SenderV6:      netip.MustParseAddr("2001:db8::10"),
		DKIMSelector:  "exp",
		DKIMKeyRecord: "v=DKIM1; k=rsa; p=FAKEKEY",
		Contact:       "contact@dns-lab.example",
		TimeScale:     0.01,
	}
	log := &dnsserver.QueryLog{}
	srv := &dnsserver.Server{
		Zones: []*dnsserver.Zone{{
			Suffix:     cfg.Suffix,
			LabelDepth: 1,
			Default:    cfg.Responder(),
		}},
		Log: log,
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	res := resolver.New(resolver.Config{Server: addr.String(), Timeout: 3 * time.Second})
	ctx := context.Background()

	// The sending MTA must pass SPF from its published address.
	c := &spf.Checker{Resolver: res, Options: spf.Options{Timeout: 10 * time.Second}}
	domain := "d0001.dsav-mail.dns-lab.example"
	out := c.CheckHost(ctx, cfg.SenderV4, domain, "spf-test@"+domain, "mta.dns-lab.example")
	if out.Result != spf.Pass {
		t.Errorf("sender SPF: %s (%v)", out.Result, out.Err)
	}
	// A spoofer must fail.
	out = c.CheckHost(ctx, netip.MustParseAddr("198.51.100.99"), domain, "spf-test@"+domain, "x")
	if out.Result != spf.Fail {
		t.Errorf("spoofer SPF: %s", out.Result)
	}
	// And over IPv6.
	out = c.CheckHost(ctx, cfg.SenderV6, domain, "spf-test@"+domain, "mta.dns-lab.example")
	if out.Result != spf.Pass {
		t.Errorf("sender SPF v6: %s (%v)", out.Result, out.Err)
	}

	// DKIM key and DMARC policy are published.
	txts, err := res.LookupTXT(ctx, "exp._domainkey."+domain)
	if err != nil || len(txts) != 1 || !strings.Contains(txts[0], "FAKEKEY") {
		t.Errorf("DKIM key: %v, %v", txts, err)
	}
	txts, err = res.LookupTXT(ctx, "_dmarc."+domain)
	if err != nil || len(txts) != 1 || !strings.HasPrefix(txts[0], "v=DMARC1; p=reject") {
		t.Errorf("DMARC: %v, %v", txts, err)
	}
}
