// Package policy defines the study's SPF test-policy catalog
// (paper §4.3.2): 39 policies, each probing one specific validator
// behaviour. A policy is realized as a dnsserver.Responder that
// synthesizes the policy's DNS view for any (testid, mtaid) pair, plus
// metadata describing what the policy measures. The paper's results
// discuss a subset of the catalog (§6–§7); the rest exercise adjacent
// behaviours and are retained for the fingerprinting future work the
// paper proposes (§8).
package policy

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
)

// Unaffiliated is the address the NotifyMX/TwoWeekMX policies resolve
// "a" mechanisms to: a documentation address that never matches a
// probe client, so validation is designed to fail (paper §7.1).
var Unaffiliated = netip.MustParseAddr("192.0.2.1")

// UnaffiliatedV6 is the IPv6 counterpart.
var UnaffiliatedV6 = netip.MustParseAddr("2001:db8:0:feed::1")

// Test identifies one test policy.
type Test struct {
	// ID is the policy's label in From domains ("t01"…"t39").
	ID string
	// Name is a short mnemonic.
	Name string
	// Description states the behaviour the policy elicits.
	Description string
	// Section cites where the paper reports on it, or "".
	Section string
	// Build creates the responder serving this policy's names.
	Build func(env *Env) dnsserver.Responder
}

// Env carries the deployment context a policy needs to synthesize
// answers.
type Env struct {
	// Suffix is the zone apex the policy's names live under.
	Suffix string
	// TimeScale multiplies the paper's shaping delays (100 ms, 800 ms),
	// letting tests and benches run the same logic at microsecond
	// scale. 1.0 reproduces the paper's timing.
	TimeScale float64
	// TTL for synthesized records.
	TTL uint32
}

func (e *Env) scale(d time.Duration) time.Duration {
	if e.TimeScale == 0 {
		return d
	}
	return time.Duration(float64(d) * e.TimeScale)
}

func (e *Env) ttl() uint32 {
	if e.TTL == 0 {
		return 60
	}
	return e.TTL
}

// txt builds a TXT response.
func (e *Env) txt(q *dnsserver.Query, payload string) dnsserver.Response {
	return dnsserver.Response{Records: []dns.RR{dnsserver.TXTRecord(q.Name, payload, e.ttl())}}
}

// addr builds an A or AAAA response matching the query type.
func (e *Env) addr(q *dnsserver.Query, v4 netip.Addr, v6 netip.Addr) dnsserver.Response {
	switch q.Type {
	case dns.TypeA:
		if !v4.IsValid() {
			return dnsserver.Response{}
		}
		return dnsserver.Response{Records: []dns.RR{{
			Name: q.Name, Type: dns.TypeA, Class: dns.ClassINET, TTL: e.ttl(),
			Data: &dns.A{Addr: v4},
		}}}
	case dns.TypeAAAA:
		if !v6.IsValid() {
			return dnsserver.Response{}
		}
		return dnsserver.Response{Records: []dns.RR{{
			Name: q.Name, Type: dns.TypeAAAA, Class: dns.ClassINET, TTL: e.ttl(),
			Data: &dns.AAAA{Addr: v6},
		}}}
	}
	return dnsserver.Response{}
}

// sub returns the follow-up name with extra labels prepended to the
// query's identity base.
func (e *Env) sub(q *dnsserver.Query, extra ...string) string {
	return dnsserver.Rejoin(q, e.Suffix, extra...)
}

// restIs reports whether the query's rest labels equal the given
// sequence (leftmost first).
func restIs(q *dnsserver.Query, labels ...string) bool {
	if len(q.Rest) != len(labels) {
		return false
	}
	for i := range labels {
		if q.Rest[i] != labels[i] {
			return false
		}
	}
	return true
}

// Catalog returns all 39 test policies in ID order.
func Catalog() []Test {
	tests := []Test{
		{
			ID: "t01", Name: "serial-vs-parallel", Section: "§7.1",
			Description: "include chain (100 ms shaped) before an a mechanism distinguishes serial from parallel lookup scheduling",
			Build:       buildSerialParallel,
		},
		{
			ID: "t02", Name: "lookup-limits", Section: "§7.2",
			Description: "30 include mechanisms across 5 levels (46 lookups, 800 ms shaped) probe the 10-lookup limit and the 20 s timeout",
			Build:       buildLookupLimits,
		},
		{
			ID: "t03", Name: "helo-check", Section: "§7.3",
			Description: "a -all policy at the HELO domain detects validators that check the HELO identity",
			Build:       buildHeloCheck,
		},
		{
			ID: "t04", Name: "syntax-error-main", Section: "§7.3",
			Description: "an ipv4: typo in the main policy; lookups right of the error reveal non-compliant continuation",
			Build:       buildSyntaxErrorMain,
		},
		{
			ID: "t05", Name: "syntax-error-child", Section: "§7.3",
			Description: "an ipv4: typo inside an included policy; parent-policy lookups after the include reveal continuation",
			Build:       buildSyntaxErrorChild,
		},
		{
			ID: "t06", Name: "void-lookups", Section: "§7.3",
			Description: "five a mechanisms that resolve to nothing probe the two-void-lookup limit",
			Build:       buildVoidLookups,
		},
		{
			ID: "t07", Name: "mx-fallback-a", Section: "§7.3",
			Description: "an mx mechanism whose domain has no MX records; A/AAAA follow-ups violate RFC 7208 §5.4",
			Build:       buildMXFallback,
		},
		{
			ID: "t08", Name: "multiple-records", Section: "§7.3",
			Description: "two SPF TXT records, each with a distinct a name, reveal whether validators permerror, follow one, or follow both",
			Build:       buildMultipleRecords,
		},
		{
			ID: "t09", Name: "tcp-fallback", Section: "§7.3",
			Description: "truncated UDP responses force policy retrieval over TCP",
			Build:       buildTCPFallback,
		},
		{
			ID: "t10", Name: "ipv6-only", Section: "§7.3",
			Description: "follow-up names served only at the IPv6 endpoint test resolver IPv6 capability",
			Build:       buildIPv6Only,
		},
		{
			ID: "t11", Name: "mx-address-limit", Section: "§7.3",
			Description: "an mx mechanism yielding 20 MX records probes the 10-address-lookup limit",
			Build:       buildMXLimit,
		},
		{
			ID: "t12", Name: "baseline", Section: "§6",
			Description: "a plain failing policy; the TXT lookup alone marks the MTA as SPF-validating",
			Build:       buildBaseline,
		},
	}
	tests = append(tests, extendedCatalog()...)
	return tests
}

// ByID returns the catalog indexed by test ID.
func ByID() map[string]Test {
	out := make(map[string]Test)
	for _, t := range Catalog() {
		out[t.ID] = t
	}
	return out
}

// Responders builds the dnsserver responder registry for the catalog.
func Responders(env *Env) map[string]dnsserver.Responder {
	out := make(map[string]dnsserver.Responder)
	for _, t := range Catalog() {
		out[t.ID] = t.Build(env)
	}
	return out
}

// --- t01: serial vs parallel (paper Figure 3) ---

func buildSerialParallel(env *Env) dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		switch {
		case q.Type == dns.TypeTXT && len(q.Rest) == 0:
			return env.txt(q, fmt.Sprintf("v=spf1 include:%s a:%s -all",
				env.sub(q, "l1"), env.sub(q, "foo")))
		case q.Type == dns.TypeTXT && restIs(q, "l1"):
			r := env.txt(q, "v=spf1 include:"+env.sub(q, "l2")+" ?all")
			r.Delay = env.scale(100 * time.Millisecond)
			return r
		case q.Type == dns.TypeTXT && restIs(q, "l2"):
			r := env.txt(q, "v=spf1 include:"+env.sub(q, "l3")+" ?all")
			r.Delay = env.scale(100 * time.Millisecond)
			return r
		case q.Type == dns.TypeTXT && restIs(q, "l3"):
			return env.txt(q, "v=spf1 ?all")
		case restIs(q, "foo"):
			return env.addr(q, Unaffiliated, UnaffiliatedV6)
		}
		return dnsserver.Response{}
	})
}

// --- t02: lookup limits (paper Figure 4) ---
//
// The policy tree has five levels. Each L1 policy includes further
// policies so a fully violating validator issues 46 lookups total. We
// reproduce the paper's structure: evaluation order is depth-first,
// and every L1–L5 response is delayed 800 ms.

// limitsChildren maps a node label to its ordered include children.
// Node labels encode the path, e.g. "n1", "n1-2".
var limitsChildren = buildLimitsTree()

// buildLimitsTree constructs a 46-node include tree with 5 levels,
// matching Figure 4's box count (46 policies under L0).
func buildLimitsTree() map[string][]string {
	children := make(map[string][]string)
	// L0 has 8 children; the first six each root a 6-node subtree
	// (1+2+3 arrangement down to level 5), the last two are leaves.
	// Total: 8 + 6*5 + 8 = 46 nodes. We keep the exact counts the
	// figure implies: 46 queries after the base L0 lookup.
	var l1 []string
	for i := 1; i <= 8; i++ {
		l1 = append(l1, fmt.Sprintf("n%d", i))
	}
	children["root"] = l1
	// Six subtrees of depth 4 under the first six L1 nodes: each node
	// chain n_i -> n_i-1 -> n_i-1-1 -> n_i-1-1-1 plus siblings to
	// total 38 descendant nodes across the tree.
	total := 8
	for i := 1; i <= 6 && total < 46; i++ {
		parent := fmt.Sprintf("n%d", i)
		for j := 1; j <= 2 && total < 46; j++ {
			child := fmt.Sprintf("%s-%d", parent, j)
			children[parent] = append(children[parent], child)
			total++
			for k := 1; k <= 2 && total < 46; k++ {
				grand := fmt.Sprintf("%s-%d", child, k)
				children[child] = append(children[child], grand)
				total++
				if total < 46 {
					great := fmt.Sprintf("%s-%d", grand, 1)
					children[grand] = append(children[grand], great)
					total++
				}
			}
		}
	}
	return children
}

// LimitsTreeSize returns the number of non-root policies in the t02
// tree (the maximum lookups after the base query).
func LimitsTreeSize() int {
	n := 0
	for _, c := range limitsChildren {
		n += len(c)
	}
	return n
}

// LimitsDelay is the paper's per-response delay for t02 names.
const LimitsDelay = 800 * time.Millisecond

func buildLookupLimits(env *Env) dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		if q.Type != dns.TypeTXT {
			return dnsserver.Response{}
		}
		node := "root"
		delay := time.Duration(0)
		if len(q.Rest) == 1 {
			node = q.Rest[0]
			delay = env.scale(LimitsDelay)
		} else if len(q.Rest) > 1 {
			return dnsserver.Response{RCode: dns.RCodeNameError}
		}
		kids, ok := limitsChildren[node]
		if !ok && node != "root" {
			if !strings.HasPrefix(node, "n") {
				return dnsserver.Response{RCode: dns.RCodeNameError}
			}
			// Leaf policy.
			r := env.txt(q, "v=spf1 ?all")
			r.Delay = delay
			return r
		}
		var sb strings.Builder
		sb.WriteString("v=spf1")
		for _, kid := range kids {
			sb.WriteString(" include:" + env.sub(q, kid))
		}
		sb.WriteString(" ?all")
		r := env.txt(q, sb.String())
		r.Delay = delay
		return r
	})
}

// --- t03: HELO check ---
//
// The probe sends HELO helo.t03.<mtaid>.<suffix>; that name publishes
// a bare -all policy. The MAIL domain t03.<mtaid>.<suffix> publishes a
// policy whose evaluation requires one follow-up, so we can observe
// MAIL evaluation distinctly from the HELO lookup.

func buildHeloCheck(env *Env) dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		switch {
		case q.Type == dns.TypeTXT && restIs(q, "helo"):
			return env.txt(q, "v=spf1 -all")
		case q.Type == dns.TypeTXT && len(q.Rest) == 0:
			return env.txt(q, "v=spf1 a:"+env.sub(q, "mail")+" -all")
		case restIs(q, "mail"):
			return env.addr(q, Unaffiliated, UnaffiliatedV6)
		}
		return dnsserver.Response{}
	})
}

// --- t04/t05: syntax errors ---

func buildSyntaxErrorMain(env *Env) dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		switch {
		case q.Type == dns.TypeTXT && len(q.Rest) == 0:
			// "ipv4" instead of "ip4" — the paper's deliberate typo.
			return env.txt(q, fmt.Sprintf("v=spf1 ipv4:%s a:%s ?all",
				Unaffiliated, env.sub(q, "after")))
		case restIs(q, "after"):
			return env.addr(q, Unaffiliated, UnaffiliatedV6)
		}
		return dnsserver.Response{}
	})
}

func buildSyntaxErrorChild(env *Env) dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		switch {
		case q.Type == dns.TypeTXT && len(q.Rest) == 0:
			return env.txt(q, fmt.Sprintf("v=spf1 include:%s a:%s ?all",
				env.sub(q, "l1"), env.sub(q, "cont")))
		case q.Type == dns.TypeTXT && restIs(q, "l1"):
			return env.txt(q, fmt.Sprintf("v=spf1 ipv4:%s ?all", Unaffiliated))
		case restIs(q, "cont"):
			return env.addr(q, Unaffiliated, UnaffiliatedV6)
		}
		return dnsserver.Response{}
	})
}

// --- t06: void lookups ---

func buildVoidLookups(env *Env) dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		if q.Type == dns.TypeTXT && len(q.Rest) == 0 {
			var sb strings.Builder
			sb.WriteString("v=spf1")
			for i := 1; i <= 5; i++ {
				fmt.Fprintf(&sb, " a:%s", env.sub(q, fmt.Sprintf("v%d", i)))
			}
			sb.WriteString(" ?all")
			return env.txt(q, sb.String())
		}
		// Every vN name exists but has no address records: NOERROR with
		// an empty answer — a textbook void lookup.
		return dnsserver.Response{}
	})
}

// --- t07: mx fallback ---

func buildMXFallback(env *Env) dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		if q.Type == dns.TypeTXT && len(q.Rest) == 0 {
			return env.txt(q, "v=spf1 mx:"+env.sub(q, "nomx")+" ?all")
		}
		// nomx has neither MX nor address records.
		return dnsserver.Response{}
	})
}

// --- t08: multiple records ---

func buildMultipleRecords(env *Env) dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		switch {
		case q.Type == dns.TypeTXT && len(q.Rest) == 0:
			return dnsserver.Response{Records: []dns.RR{
				dnsserver.TXTRecord(q.Name, "v=spf1 a:"+env.sub(q, "one")+" ?all", env.ttl()),
				dnsserver.TXTRecord(q.Name, "v=spf1 a:"+env.sub(q, "two")+" ?all", env.ttl()),
			}}
		case restIs(q, "one"), restIs(q, "two"):
			return env.addr(q, Unaffiliated, UnaffiliatedV6)
		}
		return dnsserver.Response{}
	})
}

// --- t09: TCP fallback ---

func buildTCPFallback(env *Env) dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		if q.Type == dns.TypeTXT && len(q.Rest) == 0 {
			r := env.txt(q, "v=spf1 a:"+env.sub(q, "tcponly")+" ?all")
			r.TruncateUDP = true
			return r
		}
		if restIs(q, "tcponly") {
			r := env.addr(q, Unaffiliated, UnaffiliatedV6)
			r.TruncateUDP = true
			return r
		}
		return dnsserver.Response{}
	})
}

// --- t10: IPv6-only ---

func buildIPv6Only(env *Env) dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		if q.Type == dns.TypeTXT && len(q.Rest) == 0 {
			// The base policy is served normally; only the follow-up
			// names sit behind IPv6-only servers.
			return env.txt(q, "v=spf1 include:"+env.sub(q, "l1")+" ?all")
		}
		if q.Type == dns.TypeTXT && restIs(q, "l1") {
			r := env.txt(q, "v=spf1 ?all")
			r.RequireIPv6 = true
			return r
		}
		r := dnsserver.Response{}
		r.RequireIPv6 = true
		return r
	})
}

// --- t11: MX address limit ---

// MXLimitCount is the number of MX records the t11 policy publishes.
const MXLimitCount = 20

func buildMXLimit(env *Env) dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		switch {
		case q.Type == dns.TypeTXT && len(q.Rest) == 0:
			return env.txt(q, "v=spf1 mx:"+env.sub(q, "mxfarm")+" ?all")
		case q.Type == dns.TypeMX && restIs(q, "mxfarm"):
			var rrs []dns.RR
			for i := 0; i < MXLimitCount; i++ {
				rrs = append(rrs, dns.RR{
					Name: q.Name, Type: dns.TypeMX, Class: dns.ClassINET, TTL: env.ttl(),
					Data: &dns.MX{
						Preference: uint16(10 + i),
						Host:       env.sub(q, fmt.Sprintf("mx%02d", i)),
					},
				})
			}
			return dnsserver.Response{Records: rrs}
		case len(q.Rest) == 1 && strings.HasPrefix(q.Rest[0], "mx"):
			return env.addr(q, Unaffiliated, UnaffiliatedV6)
		}
		return dnsserver.Response{}
	})
}

// --- t12: baseline ---

func buildBaseline(env *Env) dnsserver.Responder {
	return dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
		if q.Type == dns.TypeTXT && len(q.Rest) == 0 {
			return env.txt(q, fmt.Sprintf("v=spf1 ip4:%s -all", Unaffiliated))
		}
		return dnsserver.Response{}
	})
}
