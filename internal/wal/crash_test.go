// The byte-level crash harness: level (1) of the two-level proof the
// durability work promises. A recorded append schedule is "killed" at
// every byte offset — by truncating the file image and by wedging a
// fault-injecting WriteSyncer at that offset — and Recover must always
// yield exactly the complete-frame prefix, with salvaged/dropped
// counts matching ground truth computed from the schedule. Level (2),
// the process-level SIGKILL/resume convergence test, lives in
// cmd/campaign.
//
// Probabilistic cases are seeded; reproduce with
//
//	CHAOS_SEED=<seed> go test -run TestCrash ./internal/wal/
package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(42)
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("chaos seed: %d (re-run with CHAOS_SEED=%d)", seed, seed)
	return seed
}

// schedule is a recorded append sequence plus its ground truth: the
// full byte image and, for every byte offset, how many whole records a
// file cut there contains.
type schedule struct {
	records [][]byte
	image   []byte
	// prefixRecords[k] = records fully contained in image[:k];
	// prefixGood[k] = bytes those records span.
	prefixRecords []int
	prefixGood    []int64
}

func makeSchedule(rng *rand.Rand, n int) *schedule {
	s := &schedule{
		prefixRecords: make([]int, 1),
		prefixGood:    make([]int64, 1),
	}
	for i := 0; i < n; i++ {
		// Sizes hit the interesting shapes: empty payloads, one-byte
		// records, and spans larger than the header.
		size := rng.Intn(64)
		if rng.Intn(5) == 0 {
			size = 0
		}
		rec := make([]byte, size)
		rng.Read(rec)
		s.records = append(s.records, rec)
		before := len(s.image)
		s.image = appendFrame(s.image, rec)
		for k := before + 1; k <= len(s.image); k++ {
			if k == len(s.image) {
				s.prefixRecords = append(s.prefixRecords, i+1)
				s.prefixGood = append(s.prefixGood, int64(len(s.image)))
			} else {
				s.prefixRecords = append(s.prefixRecords, i)
				s.prefixGood = append(s.prefixGood, int64(before))
			}
		}
	}
	return s
}

// recoverRecords runs Recover collecting salvaged payloads.
func recoverRecords(t *testing.T, path string) (RecoverStats, [][]byte) {
	t.Helper()
	var got [][]byte
	stats, err := Recover(path, RecoverOptions{OnRecord: func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}})
	if err != nil {
		t.Fatalf("Recover(%s): %v", path, err)
	}
	return stats, got
}

// TestCrashAtEveryByteOffset kills the schedule at every offset k by
// truncating the image: Recover must salvage exactly the whole-frame
// prefix, drop exactly the tail, and leave the file append-ready.
func TestCrashAtEveryByteOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(chaosSeed(t)))
	s := makeSchedule(rng, 20)
	dir := t.TempDir()
	path := filepath.Join(dir, "log.wal")
	for k := 0; k <= len(s.image); k++ {
		if err := os.WriteFile(path, s.image[:k], 0o644); err != nil {
			t.Fatal(err)
		}
		stats, got := recoverRecords(t, path)
		wantRecords, wantGood := s.prefixRecords[k], s.prefixGood[k]
		if stats.Records != wantRecords || stats.GoodBytes != wantGood {
			t.Fatalf("kill at %d: recovered %d records / %d bytes, want %d / %d",
				k, stats.Records, stats.GoodBytes, wantRecords, wantGood)
		}
		if wantDropped := int64(k) - wantGood; stats.DroppedBytes != wantDropped {
			t.Fatalf("kill at %d: dropped %d bytes, want %d", k, stats.DroppedBytes, wantDropped)
		}
		if stats.Truncated != (stats.DroppedBytes > 0) {
			t.Fatalf("kill at %d: Truncated=%v with %d dropped", k, stats.Truncated, stats.DroppedBytes)
		}
		// Zero partial records surfaced: every salvaged payload is
		// byte-identical to what was appended.
		for i, p := range got {
			if !bytes.Equal(p, s.records[i]) {
				t.Fatalf("kill at %d: salvaged record %d differs", k, i)
			}
		}
		// The repaired file is append-ready and the appended record is
		// recoverable — the consistent-prefix invariant survives the
		// crash/repair/append cycle.
		w, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("kill at %d: reopen: %v", k, err)
		}
		if err := w.Append([]byte("post-crash")); err != nil {
			t.Fatalf("kill at %d: append after repair: %v", k, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		again, _ := recoverRecords(t, path)
		if again.Records != wantRecords+1 || again.Truncated {
			t.Fatalf("kill at %d: post-repair recover %+v, want %d records, no truncation",
				k, again, wantRecords+1)
		}
	}
}

// TestCrashViaFaultingWriterAtEveryOffset replays the same schedule
// through a live WAL whose WriteSyncer dies at byte offset k. Unlike
// image truncation this exercises the WAL's own failure handling: the
// sticky error, the wedge, and the on-disk state a real torn write
// leaves behind.
func TestCrashViaFaultingWriterAtEveryOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(chaosSeed(t) + 1))
	s := makeSchedule(rng, 12)
	dir := t.TempDir()
	for k := 0; k <= len(s.image); k++ {
		path := filepath.Join(dir, fmt.Sprintf("log-%d.wal", k))
		var ff *faultFile
		w, err := Open(path, Options{WrapFile: func(f File) File {
			ff = &faultFile{f: f, budget: k}
			return ff
		}})
		if err != nil {
			t.Fatal(err)
		}
		wrote := 0
		var failErr error
		for _, rec := range s.records {
			if err := w.Append(rec); err != nil {
				failErr = err
				break
			}
			wrote++
		}
		if k < len(s.image) {
			if failErr == nil {
				t.Fatalf("kill at %d: writer never failed", k)
			}
			if !errors.Is(w.Err(), errInjected) {
				t.Fatalf("kill at %d: sticky error %v", k, w.Err())
			}
			if w.Check() == nil {
				t.Fatalf("kill at %d: wedged WAL passes health check", k)
			}
		} else if failErr != nil {
			t.Fatalf("full budget still failed: %v", failErr)
		}
		_ = w.Close()

		stats, got := recoverRecords(t, path)
		// Ground truth: Append either wrote a whole frame or died
		// mid-frame at offset k; the salvaged prefix is the whole
		// frames below k, and recovery must agree with both the
		// schedule and the number of successful Appends.
		wantRecords := s.prefixRecords[k]
		if stats.Records != wantRecords {
			t.Fatalf("kill at %d: recovered %d records, want %d", k, stats.Records, wantRecords)
		}
		if wrote < wantRecords {
			t.Fatalf("kill at %d: %d Appends succeeded but %d records recovered", k, wrote, stats.Records)
		}
		for i, p := range got {
			if !bytes.Equal(p, s.records[i]) {
				t.Fatalf("kill at %d: salvaged record %d differs", k, i)
			}
		}
	}
}

// TestCrashBitFlips corrupts one byte at a sample of offsets in an
// otherwise intact image: recovery must keep exactly the records
// before the corrupted frame — never resurrect ones after it, never
// surface the damaged one.
func TestCrashBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(chaosSeed(t) + 2))
	s := makeSchedule(rng, 16)
	// frameOf[k] = index of the record whose frame spans offset k.
	frameOf := make([]int, len(s.image))
	{
		off := 0
		for i, rec := range s.records {
			for j := 0; j < headerSize+len(rec); j++ {
				frameOf[off+j] = i
			}
			off += headerSize + len(rec)
		}
	}
	path := filepath.Join(t.TempDir(), "log.wal")
	for k := 0; k < len(s.image); k++ {
		img := append([]byte(nil), s.image...)
		img[k] ^= 0x41
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		stats, got := recoverRecords(t, path)
		// A flip strikes exactly one frame — its marker, length, CRC,
		// or payload — and recovery keeps precisely the records before
		// it: never the damaged one, never anything after it.
		want := frameOf[k]
		if stats.Records != want {
			t.Fatalf("flip at %d: %d records recovered, frame %d struck",
				k, stats.Records, want)
		}
		for i, p := range got {
			if !bytes.Equal(p, s.records[i]) {
				t.Fatalf("flip at %d: salvaged record %d differs", k, i)
			}
		}
		if stats.GoodBytes+stats.DroppedBytes != int64(len(img)) {
			t.Fatalf("flip at %d: %d good + %d dropped != %d total",
				k, stats.GoodBytes, stats.DroppedBytes, len(img))
		}
	}
}
