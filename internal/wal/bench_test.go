package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// BenchmarkWALAppend measures the per-record append cost of each sync
// policy over a realistic journal-line payload. sync=none is the
// number the bench-diff gate watches (it must stay comparable to a
// plain buffered write); sync=always is reported, not gated — it is
// the price of machine-crash durability and is dominated by the
// device's fsync latency.
func BenchmarkWALAppend(b *testing.B) {
	rec := []byte(`{"t":"2026-08-08T12:00:00.000000001Z","ev":"done","k":{"mta":"mta00042","test":"t12"},"n":2}` + "\n")
	for _, policy := range []SyncPolicy{SyncNone, SyncInterval, SyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "bench.wal")
			w, err := Open(path, Options{Sync: policy, Interval: 10 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(rec)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALRecover measures replaying a journal-sized log: the cost
// a resumed campaign pays at startup.
func BenchmarkWALRecover(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	w, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		rec := fmt.Sprintf(`{"t":"2026-08-08T12:00:00Z","ev":"done","k":{"mta":"mta%05d","test":"t12"}}`+"\n", i)
		if err := w.Append([]byte(rec)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := Recover(path, RecoverOptions{})
		if err != nil || stats.Records != 10000 {
			b.Fatalf("%+v, %v", stats, err)
		}
	}
}
