// Package wal is a reusable, stdlib-only write-ahead log: checksummed
// record framing over an append-only file, a configurable sync policy,
// size-based rotation, and crash recovery that salvages the valid
// prefix of a torn file.
//
// The study's raw data — the authoritative server's query log and the
// campaign's progress journal — is append-only JSONL, written
// continuously over a multi-week measurement. A plain file gives that
// record no integrity story: a crash mid-write leaves a torn tail, a
// disk fault corrupts a line silently, and the reader cannot tell
// salvageable prefix from garbage. The WAL frames each record as
//
//	marker(1) | length(4, LE) | CRC32C(payload)(4, LE) | payload
//
// so Recover can walk the file from the front, verify every record,
// and truncate the first frame that fails — torn write, bit rot, or
// arbitrary bytes — leaving the file append-ready with a precise count
// of what was salvaged and what was dropped. The payload stays the
// caller's existing wire format (JSONL lines here), so analysis
// tooling keeps working on the framed stream through Reader.
//
// Durability is a policy, not a constant: SyncAlways fsyncs every
// record (the journal of a two-week campaign), SyncInterval group-
// commits on a background flusher (the high-rate query log), SyncNone
// leaves flushing to the kernel. In every mode Append hands the whole
// frame to the kernel in one write, so a SIGKILL — as opposed to a
// machine crash — loses at most the record in flight.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"sendervalid/internal/telemetry"
)

// Frame layout constants. The marker byte is chosen to be invalid as
// the first byte of any JSONL record (and of UTF-8 text generally), so
// a framed log and a plain-text log can be told apart by their first
// byte — that is how OpenJournal and the analyzer sniff formats.
const (
	// Marker opens every frame.
	Marker = 0xC3
	// headerSize is marker + length + checksum.
	headerSize = 1 + 4 + 4
	// DefaultMaxRecordBytes bounds a single record (and, during
	// recovery, the length field a corrupt header can claim).
	DefaultMaxRecordBytes = 16 << 20
)

// crcTable is the Castagnoli polynomial (CRC32C) — hardware-
// accelerated on amd64/arm64, and the checksum used by comparable
// journals (leveldb, etcd's WAL).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of payload, exposed for tests that
// construct frames by hand.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, crcTable) }

// SyncPolicy selects when appended records are fsynced to stable
// storage.
type SyncPolicy int

const (
	// SyncNone never fsyncs: records reach the kernel per Append (so
	// process death loses nothing already appended) but a machine
	// crash can lose recently appended records.
	SyncNone SyncPolicy = iota
	// SyncInterval group-commits: a background flusher fsyncs the file
	// every Options.Interval while appends are dirty. A machine crash
	// loses at most one interval of records.
	SyncInterval
	// SyncAlways fsyncs before Append returns: once Append returns
	// nil, the record survives machine failure. The per-record fsync
	// cost is measured by BenchmarkWALAppend.
	SyncAlways
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	default:
		return "none"
	}
}

// ParseSyncPolicy parses the -*-sync flag spellings.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none", "":
		return SyncNone, nil
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncNone, fmt.Errorf("wal: unknown sync policy %q (want none, interval, or always)", s)
}

// File is the write surface the WAL needs from its backing file.
// Options.WrapFile lets tests interpose fault injection here.
type File interface {
	io.Writer
	Sync() error
}

// Options configures Open.
type Options struct {
	// Sync is the durability policy; see SyncPolicy.
	Sync SyncPolicy
	// Interval is the SyncInterval group-commit period. Default 100ms.
	Interval time.Duration
	// RotateBytes rotates the live file to <path>.<seq> via atomic
	// rename once appending a record would push it past this size.
	// Zero disables rotation. Records never span segments.
	RotateBytes int64
	// MaxRecordBytes bounds one record's payload; Append rejects
	// larger records and Recover treats larger claimed lengths as
	// corruption. Default DefaultMaxRecordBytes.
	MaxRecordBytes int
	// WrapFile, when non-nil, wraps every backing file the WAL opens
	// (the live segment and each post-rotation successor). It exists
	// for crash harnesses: a wrapper that fails, short-writes, or
	// stops writing at a scheduled byte offset simulates torn writes
	// without killing the process.
	WrapFile func(File) File
}

func (o *Options) fillDefaults() {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = DefaultMaxRecordBytes
	}
}

// ErrNotWAL is returned by Open for a non-empty file that does not
// begin with the frame marker: almost certainly a plain-text log that
// recovery would otherwise destroy by truncating to zero. Callers that
// really mean to repair such a file use Recover, which is documented
// as destructive.
var ErrNotWAL = errors.New("wal: file is not framed (no marker at offset 0)")

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// WAL is an append-only checksummed record log. All methods are safe
// for concurrent use. Write errors are sticky: after the first failed
// append or sync the WAL refuses further work and Err/Check report the
// failure, so a health check can flip /healthz instead of the process
// silently losing its durable record.
type WAL struct {
	path string
	opts Options

	mu    sync.Mutex
	f     *os.File // live segment (rotation and truncation need the real file)
	w     File     // write surface (f, possibly wrapped)
	size  int64    // live segment size
	seq   int      // next rotation suffix
	buf   []byte   // frame assembly buffer, reused across appends
	err   error    // sticky first failure
	dirty bool     // bytes appended since the last sync

	closed    bool
	flushStop chan struct{}
	flushDone chan struct{}

	recovered RecoverStats

	// Instruments are always-on (zero-value counters are usable);
	// RegisterMetrics publishes them.
	appends     telemetry.Counter
	appendBytes telemetry.Counter
	syncs       telemetry.Counter
	failures    telemetry.Counter
	rotations   telemetry.Counter
	syncSeconds *telemetry.Histogram
}

// Open opens (creating if absent) the WAL at path, recovering the live
// segment first: the valid record prefix is kept, a torn or corrupt
// tail is truncated away, and the recovery outcome is available via
// Recovered. A non-empty file that is not framed fails with ErrNotWAL
// rather than truncating someone else's data.
func Open(path string, opts Options) (*WAL, error) {
	opts.fillDefaults()
	stats, err := Recover(path, RecoverOptions{
		MaxRecordBytes: opts.MaxRecordBytes,
		RefuseUnframed: true,
	})
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seeking %s: %w", path, err)
	}
	w := &WAL{
		path:        path,
		opts:        opts,
		f:           f,
		size:        size,
		seq:         nextSeq(path),
		recovered:   stats,
		syncSeconds: telemetry.NewHistogram(telemetry.LatencyBuckets),
	}
	w.w = w.wrap(f)
	if opts.Sync == SyncInterval {
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flusher()
	}
	return w, nil
}

func (w *WAL) wrap(f File) File {
	if w.opts.WrapFile != nil {
		return w.opts.WrapFile(f)
	}
	return f
}

// Recovered reports what Open's recovery pass found in the live
// segment: records salvaged, bytes kept, and bytes truncated away.
func (w *WAL) Recovered() RecoverStats { return w.recovered }

// Path returns the live segment path.
func (w *WAL) Path() string { return w.path }

// Append frames one record and writes it to the live segment,
// honouring the sync policy. The record is framed and handed to the
// kernel in a single write, so a process kill can only lose whole
// records, never interleave them. Append retains no reference to p.
func (w *WAL) Append(p []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(p)
}

// Write implements io.Writer over Append — one record per call — so
// the WAL drops into io.Writer plumbing like the campaign's journal
// sink. The callers that use it (journalWriter, WALSink) write exactly
// one logical record per call.
func (w *WAL) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.appendLocked(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (w *WAL) appendLocked(p []byte) error {
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		w.failures.Inc()
		return w.err
	}
	if len(p) > w.opts.MaxRecordBytes {
		// An oversized record is a caller bug, not a log failure: the
		// error is returned but not made sticky.
		w.failures.Inc()
		return fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(p), w.opts.MaxRecordBytes)
	}
	frame := int64(headerSize + len(p))
	if w.opts.RotateBytes > 0 && w.size > 0 && w.size+frame > w.opts.RotateBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	w.buf = appendFrame(w.buf[:0], p)
	if _, err := w.w.Write(w.buf); err != nil {
		w.fail(fmt.Errorf("wal: appending to %s: %w", w.path, err))
		return w.err
	}
	w.size += frame
	w.dirty = true
	w.appends.Inc()
	w.appendBytes.Add(uint64(frame))
	if w.opts.Sync == SyncAlways {
		return w.syncLocked()
	}
	return nil
}

// appendFrame appends one framed record to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	hdr[0] = Marker
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], Checksum(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// rotateLocked finalizes the live segment and starts a fresh one: sync
// the old file (a finished segment is always fully durable), atomically
// rename it to <path>.<seq>, and create the successor at path. A crash
// between rename and create leaves no live file, which Open treats as
// an empty log after the rotated segments — no window loses records.
func (w *WAL) rotateLocked() error {
	start := time.Now()
	if err := w.w.Sync(); err != nil {
		w.fail(fmt.Errorf("wal: syncing %s before rotation: %w", w.path, err))
		return w.err
	}
	w.syncSeconds.Observe(time.Since(start).Seconds())
	w.syncs.Inc()
	if err := w.f.Close(); err != nil {
		w.fail(fmt.Errorf("wal: closing %s for rotation: %w", w.path, err))
		return w.err
	}
	rotated := fmt.Sprintf("%s.%d", w.path, w.seq)
	if err := os.Rename(w.path, rotated); err != nil {
		w.fail(fmt.Errorf("wal: rotating %s: %w", w.path, err))
		return w.err
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		w.fail(fmt.Errorf("wal: creating segment after rotation: %w", err))
		return w.err
	}
	w.seq++
	w.f = f
	w.w = w.wrap(f)
	w.size = 0
	w.dirty = false
	w.rotations.Inc()
	return nil
}

// Sync flushes appended records to stable storage, regardless of
// policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	if !w.dirty {
		return nil
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	start := time.Now()
	if err := w.w.Sync(); err != nil {
		w.fail(fmt.Errorf("wal: syncing %s: %w", w.path, err))
		return w.err
	}
	w.syncSeconds.Observe(time.Since(start).Seconds())
	w.syncs.Inc()
	w.dirty = false
	return nil
}

func (w *WAL) fail(err error) {
	if w.err == nil {
		w.err = err
	}
	w.failures.Inc()
}

// flusher is the SyncInterval group-commit loop.
func (w *WAL) flusher() {
	defer close(w.flushDone)
	ticker := time.NewTicker(w.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w.mu.Lock()
			if !w.closed && w.err == nil && w.dirty {
				_ = w.syncLocked()
			}
			w.mu.Unlock()
		case <-w.flushStop:
			return
		}
	}
}

// Err returns the sticky failure, nil while the WAL is healthy.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Check is a telemetry health check: it fails once the WAL has wedged
// (sticky write/sync failure), flipping /healthz so an operator learns
// the measurement's durable record has stopped growing.
func (w *WAL) Check() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return fmt.Errorf("wal wedged: %v", w.err)
	}
	return nil
}

// Close syncs and closes the live segment. Append after Close returns
// ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var ferr error
	if w.err == nil && w.dirty {
		if err := w.w.Sync(); err == nil {
			w.syncs.Inc()
			w.dirty = false
		} else {
			ferr = fmt.Errorf("wal: syncing %s at close: %w", w.path, err)
			w.err = ferr
		}
	}
	cerr := w.f.Close()
	stop := w.flushStop
	done := w.flushDone
	w.mu.Unlock()

	if stop != nil {
		close(stop)
		<-done
	}
	if ferr != nil {
		return ferr
	}
	if cerr != nil {
		return fmt.Errorf("wal: closing %s: %w", w.path, cerr)
	}
	return nil
}

// Size returns the live segment's current size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// RegisterMetrics publishes the WAL's counters and sync-latency
// histogram under the wal_ namespace. Const labels distinguish
// multiple WALs in one process (e.g. name="journal" vs name="querylog").
func (w *WAL) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.MustCounter("wal_records_appended_total",
		"Records framed and handed to the kernel.",
		&w.appends, labels...)
	reg.MustCounter("wal_bytes_appended_total",
		"Framed bytes appended (header plus payload).",
		&w.appendBytes, labels...)
	reg.MustCounter("wal_syncs_total",
		"fsync calls issued (per-record, group-commit, rotation, and close).",
		&w.syncs, labels...)
	reg.MustCounter("wal_failures_total",
		"Appends or syncs that failed (the first failure wedges the log).",
		&w.failures, labels...)
	reg.MustCounter("wal_rotations_total",
		"Live-segment rotations.",
		&w.rotations, labels...)
	reg.MustHistogram("wal_sync_seconds",
		"Latency of fsync on the live segment.",
		w.syncSeconds, labels...)
	reg.MustGaugeFunc("wal_segment_bytes",
		"Current live-segment size.",
		func() float64 { return float64(w.Size()) }, labels...)
	reg.MustGaugeFunc("wal_recovered_records",
		"Records salvaged from the live segment when this WAL opened.",
		func() float64 { return float64(w.recovered.Records) }, labels...)
	reg.MustGaugeFunc("wal_recovered_dropped_bytes",
		"Torn/corrupt tail bytes truncated when this WAL opened.",
		func() float64 { return float64(w.recovered.DroppedBytes) }, labels...)
}
