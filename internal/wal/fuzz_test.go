package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecover feeds Recover arbitrary byte soup. The invariants:
// it never panics, every salvaged record round-trips byte-identically
// through Append, and re-running Recover on the repaired file is a
// fixed point (same records, nothing further truncated). Seeds cover
// the interesting frame shapes; `make fuzz-seeds` replays them, and
// `go test -fuzz=FuzzWALRecover ./internal/wal/` explores.
func FuzzWALRecover(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("{\"ev\":\"done\"}\n"))                 // plain JSONL, no framing
	f.Add([]byte{Marker})                                // lone marker
	f.Add([]byte{Marker, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // absurd length claim
	f.Add(appendFrame(nil, nil))                         // empty payload
	f.Add(appendFrame(nil, []byte("one line\n")))
	full := appendFrame(appendFrame(nil, []byte("a\n")), []byte("bb\n"))
	f.Add(full)
	f.Add(full[:len(full)-1])              // torn payload
	f.Add(full[:len(full)-len("bb\n")-2])  // torn header
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped) // checksum mismatch
	f.Add(append(append([]byte(nil), full...), 0xC3, 0x00)) // valid prefix, torn tail

	f.Fuzz(func(t *testing.T, soup []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "soup.wal")
		if err := os.WriteFile(path, soup, 0o644); err != nil {
			t.Fatal(err)
		}

		var salvaged [][]byte
		stats, err := Recover(path, RecoverOptions{OnRecord: func(p []byte) error {
			salvaged = append(salvaged, append([]byte(nil), p...))
			return nil
		}})
		if err != nil {
			t.Fatalf("Recover on arbitrary bytes must not error: %v", err)
		}
		if stats.GoodBytes+stats.DroppedBytes != int64(len(soup)) {
			t.Fatalf("accounting: %d good + %d dropped != %d input",
				stats.GoodBytes, stats.DroppedBytes, len(soup))
		}
		if len(salvaged) != stats.Records {
			t.Fatalf("delivered %d records, stats claim %d", len(salvaged), stats.Records)
		}

		// Fixed point: the repaired file recovers to itself.
		var again [][]byte
		stats2, err := Recover(path, RecoverOptions{OnRecord: func(p []byte) error {
			again = append(again, append([]byte(nil), p...))
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		if stats2.Truncated || stats2.Records != stats.Records || stats2.GoodBytes != stats.GoodBytes {
			t.Fatalf("Recover is not a fixed point: first %+v, second %+v", stats, stats2)
		}
		if len(again) != len(salvaged) {
			t.Fatalf("second pass delivered %d records, first %d", len(again), len(salvaged))
		}
		for i := range salvaged {
			if !bytes.Equal(again[i], salvaged[i]) {
				t.Fatalf("record %d changed between recovery passes", i)
			}
		}

		// Round trip: re-appending the salvaged records produces a log
		// whose recovery yields them byte-identically.
		rt := filepath.Join(dir, "roundtrip.wal")
		w, err := Open(rt, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range salvaged {
			if err := w.Append(rec); err != nil {
				t.Fatalf("re-appending salvaged record: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		var rtRecords [][]byte
		rtStats, err := Recover(rt, RecoverOptions{OnRecord: func(p []byte) error {
			rtRecords = append(rtRecords, append([]byte(nil), p...))
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		if rtStats.Truncated || rtStats.Records != len(salvaged) {
			t.Fatalf("round-trip log recovery: %+v for %d records", rtStats, len(salvaged))
		}
		for i := range salvaged {
			if !bytes.Equal(rtRecords[i], salvaged[i]) {
				t.Fatalf("round-trip record %d differs", i)
			}
		}
	})
}
