package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// readAll collects every record payload of the segment chain at path
// through tolerant Readers, mirroring how analysis consumes a log.
func readAll(t *testing.T, path string) ([][]byte, RecoverStats) {
	t.Helper()
	segs, err := Segments(path)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	var total RecoverStats
	for _, seg := range segs {
		f, err := os.Open(seg)
		if err != nil {
			t.Fatal(err)
		}
		r := NewReader(f)
		var rec bytes.Buffer
		// Payloads here are newline-terminated lines; split on them.
		if _, err := io.Copy(&rec, r); err != nil {
			t.Fatal(err)
		}
		f.Close()
		s := r.Stats()
		total.Records += s.Records
		total.GoodBytes += s.GoodBytes
		total.DroppedBytes += s.DroppedBytes
		total.Truncated = total.Truncated || s.Truncated
		for _, line := range bytes.SplitAfter(rec.Bytes(), []byte{'\n'}) {
			if len(line) > 0 {
				out = append(out, append([]byte(nil), line...))
			}
		}
	}
	return out, total
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("{\"i\":%d,\"pad\":%q}\n", i, string(make([]byte, i%37))))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	stats, err := Recover(path, RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 100 || stats.Truncated || stats.DroppedBytes != 0 {
		t.Fatalf("recover of a clean log: %+v", stats)
	}

	got, rstats := readAll(t, path)
	if rstats.Records != 100 {
		t.Fatalf("reader saw %d records, want 100", rstats.Records)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}

	// Reopen and keep appending: recovery on a clean log is a no-op
	// and the file stays append-ready.
	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := w2.Recovered(); r.Records != 100 || r.Truncated {
		t.Fatalf("reopen recovery: %+v", r)
	}
	if err := w2.Append([]byte("tail\n")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := readAll(t, path); len(got) != 101 {
		t.Fatalf("after reopen+append: %d records, want 101", len(got))
	}
}

func TestOpenRefusesPlainText(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(path, []byte("{\"ev\":\"done\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrNotWAL) {
		t.Fatalf("Open on plain JSONL: %v, want ErrNotWAL", err)
	}
	// The refusal must not have modified the file.
	b, err := os.ReadFile(path)
	if err != nil || len(b) == 0 {
		t.Fatalf("plain file was damaged: %q, %v", b, err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncNone, SyncInterval, SyncAlways} {
		t.Run(policy.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "log.wal")
			w, err := Open(path, Options{Sync: policy, Interval: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := w.Append([]byte("x\n")); err != nil {
					t.Fatal(err)
				}
			}
			if policy == SyncAlways && w.syncs.Value() < 10 {
				t.Errorf("SyncAlways issued %d syncs for 10 appends", w.syncs.Value())
			}
			if policy == SyncInterval {
				deadline := time.Now().Add(2 * time.Second)
				for w.syncs.Value() == 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if w.syncs.Value() == 0 {
					t.Error("SyncInterval flusher never synced")
				}
			}
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if err := w.Append([]byte("late")); !errors.Is(err, ErrClosed) {
				t.Errorf("append after close: %v, want ErrClosed", err)
			}
			if stats, err := Recover(path, RecoverOptions{}); err != nil || stats.Records != 10 {
				t.Fatalf("recover: %+v, %v", stats, err)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"none": SyncNone, "": SyncNone, "interval": SyncInterval, "always": SyncAlways,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("fsync"); err == nil {
		t.Error("bad policy accepted")
	}
}

// TestRotationConcurrentAppends hammers a rotating WAL from several
// goroutines under -race: every record must land exactly once across
// the segment chain, per-goroutine order preserved.
func TestRotationConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	w, err := Open(path, Options{RotateBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := []byte(fmt.Sprintf("w%d-%04d\n", g, i))
				if err := w.Append(rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := Segments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %v", segs)
	}
	records, stats := readAll(t, path)
	if stats.Truncated {
		t.Fatalf("clean rotated log reports truncation: %+v", stats)
	}
	if len(records) != writers*perWriter {
		t.Fatalf("read %d records, want %d", len(records), writers*perWriter)
	}
	// Exactly-once and per-writer order.
	next := make([]int, writers)
	seen := make(map[string]bool, len(records))
	for _, rec := range records {
		s := string(rec)
		if seen[s] {
			t.Fatalf("duplicate record %q", s)
		}
		seen[s] = true
		var g, i int
		if _, err := fmt.Sscanf(s, "w%d-%d", &g, &i); err != nil {
			t.Fatalf("unparseable record %q", s)
		}
		if i != next[g] {
			t.Fatalf("writer %d out of order: got %d want %d", g, i, next[g])
		}
		next[g]++
	}
}

// TestRecoverAcrossRotationBoundary tears the live segment right after
// a rotation: the rotated segments stay intact and recovery repairs
// only the live tail.
func TestRecoverAcrossRotationBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	w, err := Open(path, Options{RotateBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for i := 0; i < 40; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%02d\n", i))); err != nil {
			t.Fatal(err)
		}
		want++
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the live segment mid-frame.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < 3 {
		t.Fatalf("live segment too small to tear (%d bytes)", len(b))
	}
	if err := os.WriteFile(path, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(path, Options{RotateBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	rec := w2.Recovered()
	if !rec.Truncated || rec.DroppedBytes == 0 {
		t.Fatalf("torn live segment not detected: %+v", rec)
	}
	if err := w2.Append([]byte("after-recovery\n")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	records, _ := readAll(t, path)
	// One record was torn off the live tail, one was appended after.
	if len(records) != want {
		t.Fatalf("read %d records, want %d (one torn, one re-appended)", len(records), want)
	}
	if string(records[len(records)-1]) != "after-recovery\n" {
		t.Fatalf("last record %q", records[len(records)-1])
	}
}

// faultFile is the fault-injecting WriteSyncer: it forwards writes to
// the real file until its byte budget runs out, then short-writes the
// remainder and fails everything after — the userspace half of a torn
// write.
type faultFile struct {
	f       File
	budget  int // bytes still allowed through
	failSync bool
	dead    bool
}

var errInjected = errors.New("injected write failure")

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.dead {
		return 0, errInjected
	}
	if len(p) <= ff.budget {
		ff.budget -= len(p)
		return ff.f.Write(p)
	}
	n := ff.budget
	ff.budget = 0
	ff.dead = true
	if n > 0 {
		if wn, err := ff.f.Write(p[:n]); err != nil {
			return wn, err
		}
	}
	return n, errInjected
}

func (ff *faultFile) Sync() error {
	if ff.dead || ff.failSync {
		return errInjected
	}
	return ff.f.Sync()
}

// TestStickyFailureWedgesWAL drives the WAL into a write failure and
// asserts the wedge is visible: Append returns the sticky error, Check
// fails (the /healthz contract), and recovery of the on-disk bytes
// still yields a consistent prefix.
func TestStickyFailureWedgesWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	var ff *faultFile
	w, err := Open(path, Options{WrapFile: func(f File) File {
		// "record\n" frames to headerSize+7 bytes; three full frames
		// plus 5 bytes dies mid 4th record.
		ff = &faultFile{f: f, budget: 3*(headerSize+7) + 5}
		return ff
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Check(); err != nil {
		t.Fatalf("healthy WAL fails Check: %v", err)
	}
	var firstErr error
	appended := 0
	for i := 0; i < 10; i++ {
		err := w.Append([]byte("record\n"))
		if err != nil {
			firstErr = err
			break
		}
		appended++
	}
	if firstErr == nil {
		t.Fatal("fault injection never fired")
	}
	if appended != 3 {
		t.Fatalf("%d records appended before the fault, want 3", appended)
	}
	if err := w.Append([]byte("more\n")); !errors.Is(err, errInjected) {
		t.Fatalf("append after wedge: %v, want sticky injected error", err)
	}
	if err := w.Err(); !errors.Is(err, errInjected) {
		t.Fatalf("Err() = %v", err)
	}
	if err := w.Check(); err == nil {
		t.Fatal("wedged WAL passes Check")
	}
	_ = w.Close()

	stats, err := Recover(path, RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 3 {
		t.Fatalf("recovered %d records, want the 3 durable ones: %+v", stats.Records, stats)
	}
	if !stats.Truncated {
		t.Fatalf("short-written 4th record not truncated: %+v", stats)
	}
}

// TestWriterAdapter checks the io.Writer view: one record per Write,
// errors surfaced.
func TestWriterAdapter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sink io.Writer = w
	for i := 0; i < 5; i++ {
		n, err := sink.Write([]byte("line\n"))
		if err != nil || n != 5 {
			t.Fatalf("Write = %d, %v", n, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if stats, _ := Recover(path, RecoverOptions{}); stats.Records != 5 {
		t.Fatalf("adapter wrote %d records, want 5", stats.Records)
	}
}

// TestStrictReaderFailsOnTear pins the strict/tolerant split.
func TestStrictReaderFailsOnTear(t *testing.T) {
	img := appendFrame(nil, []byte("one\n"))
	img = appendFrame(img, []byte("two\n"))
	torn := img[:len(img)-2]

	r := NewStrictReader(bytes.NewReader(torn))
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("strict reader accepted a torn tail")
	}

	tr := NewReader(bytes.NewReader(torn))
	got, err := io.ReadAll(tr)
	if err != nil {
		t.Fatalf("tolerant reader: %v", err)
	}
	if string(got) != "one\n" {
		t.Fatalf("tolerant reader salvaged %q", got)
	}
	if s := tr.Stats(); s.Records != 1 || !s.Truncated {
		t.Fatalf("tolerant stats: %+v", s)
	}
}

// TestSegmentsOrder pins numeric (not lexical) segment ordering past
// ten rotations.
func TestSegmentsOrder(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.wal")
	w, err := Open(path, Options{RotateBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := w.Append([]byte(fmt.Sprintf("%04d-padding-padding\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 12 {
		t.Fatalf("wanted >11 segments to cross the lexical trap, got %d", len(segs))
	}
	records, _ := readAll(t, path)
	for i, rec := range records {
		var got int
		if _, err := fmt.Sscanf(string(rec), "%d-", &got); err != nil || got != i {
			t.Fatalf("segment order broken at record %d: %q", i, rec)
		}
	}
}

// TestRandomizedKillAndReopen loops crash/reopen cycles with random
// tears, asserting the salvaged prefix only ever grows by appended
// records — the WAL's history is append-only across repairs.
func TestRandomizedKillAndReopen(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	path := filepath.Join(t.TempDir(), "log.wal")
	var history [][]byte
	for cycle := 0; cycle < 25; cycle++ {
		w, err := Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		salvaged := w.Recovered().Records
		if salvaged > len(history) {
			t.Fatalf("cycle %d: salvaged %d > %d ever durably appended", cycle, salvaged, len(history))
		}
		history = history[:salvaged]
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			rec := []byte(fmt.Sprintf("c%d-r%d-%x\n", cycle, i, rng.Int63()))
			if err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
			history = append(history, rec)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// Simulate the crash: chop a random number of tail bytes.
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if chop := rng.Intn(30); chop > 0 {
			if chop > len(b) {
				chop = len(b)
			}
			b = b[:len(b)-chop]
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			// Drop history entries the chop destroyed.
			stats, err := Recover(path, RecoverOptions{})
			if err != nil {
				t.Fatal(err)
			}
			history = history[:stats.Records]
		}
	}
	records, _ := readAll(t, path)
	if len(records) != len(history) {
		t.Fatalf("final log has %d records, expected %d", len(records), len(history))
	}
	for i := range history {
		if !bytes.Equal(records[i], history[i]) {
			t.Fatalf("record %d: got %q want %q", i, records[i], history[i])
		}
	}
}
