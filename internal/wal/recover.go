package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the WAL: crash recovery (walk the
// file, keep the valid record prefix, truncate the rest) and the
// streaming Reader analysis tooling uses to consume a framed log as if
// it were the plain payload stream.
//
// The recovery invariant: a WAL file's meaningful content is always a
// prefix of complete, checksum-valid frames. Anything after the first
// invalid byte — wrong marker, impossible length, short payload, CRC
// mismatch — is crash debris by definition, because Append hands each
// frame to the kernel in order. Recovery therefore never resyncs past
// corruption looking for later records; doing so could resurrect
// records that were legitimately truncated away by an earlier repair,
// breaking the append-only history.

// RecoverStats describes a recovery or scan outcome.
type RecoverStats struct {
	// Records is the number of valid records in the salvaged prefix.
	Records int
	// GoodBytes is the length of the valid prefix (framing included).
	GoodBytes int64
	// DroppedBytes is the length of the torn/corrupt tail beyond the
	// prefix (truncated away by Recover, skipped by a tolerant Reader).
	DroppedBytes int64
	// Truncated reports whether a tail was dropped at all.
	Truncated bool
}

// RecoverOptions configures Recover.
type RecoverOptions struct {
	// MaxRecordBytes bounds the payload length a frame header may
	// claim; larger claims are corruption. Default
	// DefaultMaxRecordBytes.
	MaxRecordBytes int
	// RefuseUnframed makes Recover fail with ErrNotWAL when the file
	// is non-empty and does not start with the frame marker, instead
	// of truncating it to zero bytes. Open sets it: a plain JSONL log
	// at the WAL's path is a configuration mistake, not a torn tail.
	RefuseUnframed bool
	// OnRecord, when non-nil, receives each salvaged record's payload
	// during the scan. The slice is reused between calls.
	OnRecord func(payload []byte) error
}

// Recover repairs the WAL file at path in place: it scans the frame
// sequence from the front, keeps the longest valid prefix, and
// truncates everything after it. It never errors on corrupt content —
// arbitrary bytes are a recoverable state, yielding an empty log at
// worst — and running it again on a repaired file is a fixed point.
// A missing file recovers to empty stats. Real I/O failures (open,
// read, truncate) are the only errors.
func Recover(path string, opts RecoverOptions) (RecoverStats, error) {
	if opts.MaxRecordBytes <= 0 {
		opts.MaxRecordBytes = DefaultMaxRecordBytes
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return RecoverStats{}, nil
	}
	if err != nil {
		return RecoverStats{}, fmt.Errorf("wal: opening %s for recovery: %w", path, err)
	}
	defer f.Close()

	if opts.RefuseUnframed {
		var first [1]byte
		n, rerr := f.Read(first[:])
		if rerr != nil && rerr != io.EOF {
			return RecoverStats{}, fmt.Errorf("wal: reading %s: %w", path, rerr)
		}
		if n == 1 && first[0] != Marker {
			return RecoverStats{}, fmt.Errorf("%w: %s", ErrNotWAL, path)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return RecoverStats{}, fmt.Errorf("wal: seeking %s: %w", path, err)
		}
	}

	stats, err := scan(bufio.NewReaderSize(f, 64*1024), opts.MaxRecordBytes, opts.OnRecord)
	if err != nil {
		return stats, err
	}
	if stats.Truncated {
		if err := f.Truncate(stats.GoodBytes); err != nil {
			return stats, fmt.Errorf("wal: truncating %s to %d bytes: %w", path, stats.GoodBytes, err)
		}
		if err := f.Sync(); err != nil {
			return stats, fmt.Errorf("wal: syncing %s after truncation: %w", path, err)
		}
	}
	return stats, nil
}

// scan walks frames from r, invoking onRecord per valid payload. It
// stops at the first invalid frame and reports the remainder as
// dropped. Only real read failures and onRecord errors are returned.
func scan(br *bufio.Reader, maxRecord int, onRecord func([]byte) error) (RecoverStats, error) {
	var stats RecoverStats
	var payload []byte
	var hdr [headerSize]byte
	for {
		n, err := io.ReadFull(br, hdr[:])
		if err == io.EOF && n == 0 {
			return stats, nil // clean end on a frame boundary
		}
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			stats.DroppedBytes += int64(n)
			stats.Truncated = true
			return stats, nil // torn header
		}
		if err != nil {
			return stats, fmt.Errorf("wal: reading frame header: %w", err)
		}
		length := int64(binary.LittleEndian.Uint32(hdr[1:5]))
		if hdr[0] != Marker || length > int64(maxRecord) {
			// Corrupt header: everything from here on is debris. Count
			// it without slurping multi-GB tails into memory.
			dropped, derr := discard(br)
			stats.DroppedBytes += int64(headerSize) + dropped
			stats.Truncated = true
			return stats, derr
		}
		want := crc32From(hdr[5:9])
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		pn, err := io.ReadFull(br, payload)
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			stats.DroppedBytes += int64(headerSize) + int64(pn)
			stats.Truncated = true
			return stats, nil // torn payload
		}
		if err != nil {
			return stats, fmt.Errorf("wal: reading record payload: %w", err)
		}
		if Checksum(payload) != want {
			dropped, derr := discard(br)
			stats.DroppedBytes += int64(headerSize) + length + dropped
			stats.Truncated = true
			return stats, derr
		}
		if onRecord != nil {
			if err := onRecord(payload); err != nil {
				return stats, err
			}
		}
		stats.Records++
		stats.GoodBytes += int64(headerSize) + length
	}
}

func crc32From(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

// discard consumes the rest of br, returning how many bytes it threw
// away.
func discard(br *bufio.Reader) (int64, error) {
	n, err := io.Copy(io.Discard, br)
	if err != nil {
		return n, fmt.Errorf("wal: draining corrupt tail: %w", err)
	}
	return n, nil
}

// IsFramed reports whether a log stream beginning with these bytes is
// WAL-framed. An empty prefix is not framed (an empty file works under
// either reading, and the plain path is the historical default).
func IsFramed(prefix []byte) bool {
	return len(prefix) > 0 && prefix[0] == Marker
}

// Segments returns every segment of the WAL at path in append order:
// rotated segments <path>.1, <path>.2, ... by sequence number, then
// the live file itself. Only paths that exist are returned; a WAL that
// never rotated yields just {path}, and a missing WAL yields nil.
func Segments(path string) ([]string, error) {
	rotated, err := rotatedSegments(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(rotated)+1)
	for _, s := range rotated {
		out = append(out, s.path)
	}
	if _, err := os.Stat(path); err == nil {
		out = append(out, path)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	return out, nil
}

type segment struct {
	path string
	seq  int
}

// rotatedSegments lists <path>.<n> files sorted by n.
func rotatedSegments(path string) ([]segment, error) {
	dir := filepath.Dir(path)
	base := filepath.Base(path)
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: listing segments of %s: %w", path, err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		rest, ok := strings.CutPrefix(name, base+".")
		if !ok {
			continue
		}
		seq, err := strconv.Atoi(rest)
		if err != nil || seq < 1 {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// nextSeq picks the rotation suffix after the highest existing one.
func nextSeq(path string) int {
	segs, err := rotatedSegments(path)
	if err != nil || len(segs) == 0 {
		return 1
	}
	return segs[len(segs)-1].seq + 1
}

// Reader streams the payloads of a framed log as one concatenated byte
// stream, so JSONL-over-WAL feeds the same line-oriented ingest as a
// plain file. In tolerant mode (the analysis default) a torn or
// corrupt tail reads as a clean EOF and is reported through Stats; in
// strict mode it surfaces as an error.
type Reader struct {
	br       *bufio.Reader
	pending  []byte // unread remainder of the current record
	tolerant bool
	maxRec   int
	stats    RecoverStats
	done     bool
	err      error
}

// NewReader returns a tolerant Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64*1024), tolerant: true, maxRec: DefaultMaxRecordBytes}
}

// NewStrictReader returns a Reader that fails on a torn or corrupt
// tail instead of treating it as end-of-log.
func NewStrictReader(r io.Reader) *Reader {
	rd := NewReader(r)
	rd.tolerant = false
	return rd
}

// Stats reports what the Reader has seen so far; after EOF it is the
// full scan outcome, mirroring Recover's accounting.
func (r *Reader) Stats() RecoverStats { return r.stats }

// Read implements io.Reader over the concatenated record payloads.
func (r *Reader) Read(p []byte) (int, error) {
	for len(r.pending) == 0 {
		if r.err != nil {
			return 0, r.err
		}
		if r.done {
			return 0, io.EOF
		}
		if err := r.next(); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := copy(p, r.pending)
	r.pending = r.pending[n:]
	return n, nil
}

// next loads the next record into pending, or sets done/err.
func (r *Reader) next() error {
	var hdr [headerSize]byte
	n, err := io.ReadFull(r.br, hdr[:])
	if err == io.EOF && n == 0 {
		r.done = true
		return nil
	}
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return r.corrupt(int64(n), "torn frame header")
	}
	if err != nil {
		return fmt.Errorf("wal: reading frame header: %w", err)
	}
	length := int64(binary.LittleEndian.Uint32(hdr[1:5]))
	if hdr[0] != Marker || length > int64(r.maxRec) {
		dropped, _ := discard(r.br)
		return r.corrupt(int64(headerSize)+dropped, "corrupt frame header")
	}
	payload := make([]byte, length)
	pn, err := io.ReadFull(r.br, payload)
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return r.corrupt(int64(headerSize)+int64(pn), "torn record payload")
	}
	if err != nil {
		return fmt.Errorf("wal: reading record payload: %w", err)
	}
	if Checksum(payload) != crc32From(hdr[5:9]) {
		dropped, _ := discard(r.br)
		return r.corrupt(int64(headerSize)+length+dropped, "record checksum mismatch")
	}
	r.stats.Records++
	r.stats.GoodBytes += int64(headerSize) + length
	r.pending = payload
	return nil
}

// corrupt records a torn/corrupt tail: EOF when tolerant, error when
// strict.
func (r *Reader) corrupt(dropped int64, what string) error {
	r.stats.DroppedBytes += dropped
	r.stats.Truncated = true
	r.done = true
	if r.tolerant {
		return nil
	}
	return fmt.Errorf("wal: %s after %d records (%d bytes dropped)", what, r.stats.Records, r.stats.DroppedBytes)
}
