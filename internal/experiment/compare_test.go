package experiment

import (
	"math"
	"strings"
	"testing"

	"sendervalid/internal/dataset"
)

func almost(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestConsistencyAccounting(t *testing.T) {
	c := Consistency{
		CommonDomains:     10,
		BothValidating:    3,
		NeitherValidating: 2,
		EmailOnly:         4,
		ProbeOnly:         1,
	}
	if got := c.Inconsistent(); got != 5 {
		t.Errorf("Inconsistent() = %d, want 5", got)
	}
	if got := c.InconsistentFraction(); !almost(got, 0.5) {
		t.Errorf("InconsistentFraction() = %v, want 0.5", got)
	}
	if got := c.EmailOnlyFraction(); !almost(got, 0.8) {
		t.Errorf("EmailOnlyFraction() = %v, want 0.8", got)
	}
	// 3 of the 7 NotifyEmail validators (both + email-only) re-observed.
	if got := c.ReobservedFraction(); !almost(got, 3.0/7.0) {
		t.Errorf("ReobservedFraction() = %v, want 3/7", got)
	}
}

func TestConsistencyZeroDomains(t *testing.T) {
	// Degenerate inputs must not divide by zero.
	var c Consistency
	if got := c.InconsistentFraction(); got != 0 {
		t.Errorf("InconsistentFraction() with no common domains = %v, want 0", got)
	}
	if got := c.EmailOnlyFraction(); got != 0 {
		t.Errorf("EmailOnlyFraction() with no inconsistencies = %v, want 0", got)
	}
	if got := c.ReobservedFraction(); got != 0 {
		t.Errorf("ReobservedFraction() with no email validators = %v, want 0", got)
	}
}

func TestCompareClassifiesDomains(t *testing.T) {
	// Four domains covering the full 2×2 of (email, probe) validation.
	// d3 designates two MTAs; one validating MTA is enough to count the
	// domain as probe-validating.
	mta := func(id string) *dataset.MTAInfo { return &dataset.MTAInfo{ID: id} }
	pop := &dataset.Population{
		Domains: []*dataset.Domain{
			{ID: "d1", MTAs: []*dataset.MTAInfo{mta("m1")}},            // both
			{ID: "d2", MTAs: []*dataset.MTAInfo{mta("m2")}},            // email only
			{ID: "d3", MTAs: []*dataset.MTAInfo{mta("m3"), mta("m4")}}, // probe only (second MTA)
			{ID: "d4", MTAs: []*dataset.MTAInfo{mta("m5")}},            // neither
		},
	}
	ne := &NotifyEmailAnalysis{Validation: map[string]DomainValidation{
		"d1": {SPF: true},
		"d2": {SPF: true},
	}}
	probes := &ProbeAnalysis{ValidatingMTASet: map[string]bool{
		"m1": true,
		"m4": true,
	}}

	c := Compare(&World{Population: pop}, ne, probes)
	want := Consistency{
		CommonDomains:     4,
		BothValidating:    1,
		NeitherValidating: 1,
		EmailOnly:         1,
		ProbeOnly:         1,
	}
	if c != want {
		t.Errorf("Compare = %+v, want %+v", c, want)
	}

	out := RenderConsistency(c)
	for _, needle := range []string{"common domains:            4", "mail-only validators:      1"} {
		if !strings.Contains(out, needle) {
			t.Errorf("rendering missing %q:\n%s", needle, out)
		}
	}
}
