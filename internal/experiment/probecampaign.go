package experiment

import (
	"context"
	"errors"
	mrand "math/rand"
	"sync"
	"time"

	"sendervalid/internal/campaign"
	"sendervalid/internal/dataset"
	"sendervalid/internal/probe"
	"sendervalid/internal/smtp"
	"sendervalid/internal/trace"
)

// ProbeCampaignOpts configures a durable probe run. The zero value
// reproduces the historical one-shot behaviour: unlimited per-MTA
// rate, default worker pool, no journal.
type ProbeCampaignOpts struct {
	// Workers caps concurrent probes across the fleet.
	Workers int
	// MTARate limits probes/second against any single MTA (the
	// politeness budget; 0 = unlimited). MTABurst is the bucket
	// depth (default 1).
	MTARate  float64
	MTABurst int
	// MaxAttempts bounds attempts per (MTA, test) pair; transient
	// failures (connection refused, timeouts, 4xx greylisting) are
	// retried with exponential backoff up to this budget.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the retry schedule.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Journal receives the append-only JSONL record of task
	// transitions (see campaign.OpenJournal / campaign.Resume).
	Journal interface{ Write([]byte) (int, error) }
	// Replay, when resuming, prunes (MTA, test) pairs the journal
	// already records as finished.
	Replay *campaign.Replay
	// Logf receives operational warnings (the one-line journal-failure
	// notice); nil discards them.
	Logf func(format string, args ...any)
	// Tracer, when non-nil, records one root span per probe attempt
	// (see campaign.Config.Tracer).
	Tracer *trace.Tracer
}

// ProbeCampaign is a prepared probe run over every (MTA, test) pair of
// a world. Its embedded *campaign.Campaign exposes Snapshot for live
// progress reporting while Run executes.
type ProbeCampaign struct {
	*campaign.Campaign

	world *World
	tests []string

	mu      sync.Mutex
	results map[campaign.Key]*probe.Result
}

// NewProbeCampaign builds (without running) a campaign covering the
// full (MTA, test) cross product, sharded by MTA so no destination is
// probed concurrently, with MTA order shuffled (paper §5.2).
func NewProbeCampaign(w *World, tests []string, opts ProbeCampaignOpts) *ProbeCampaign {
	if len(tests) == 0 {
		tests = CoreTests
	}
	if opts.Workers <= 0 {
		opts.Workers = 32
	}

	client := &probe.Client{
		Dialer:     w.Fabric.BoundDialer(ProbeAddr4, ProbeAddr6),
		Suffix:     DefaultTestSuffix,
		HeloDomain: "probe.dns-lab.example",
		HeloTestID: "t03",
		Timeout:    10 * time.Second,
	}

	// One recipient domain per MTA: the first domain designating it
	// (paper §5.2: one recipient domain selected per MTA).
	recipientDomain := make(map[string]string)
	for _, d := range w.Population.Domains {
		for _, m := range d.MTAs {
			if _, ok := recipientDomain[m.ID]; !ok {
				recipientDomain[m.ID] = d.Name
			}
		}
	}
	addrOf := make(map[string]*dataset.MTAInfo, len(w.Population.MTAs))
	for _, info := range w.Population.MTAs {
		addrOf[info.ID] = info
	}

	pc := &ProbeCampaign{
		world:   w,
		tests:   tests,
		results: make(map[campaign.Key]*probe.Result),
	}
	pc.Campaign = campaign.New(campaign.Config{
		Workers:     opts.Workers,
		ShardRate:   opts.MTARate,
		ShardBurst:  opts.MTABurst,
		MaxAttempts: opts.MaxAttempts,
		BackoffBase: opts.BackoffBase,
		BackoffMax:  opts.BackoffMax,
		Seed:        w.cfg.Seed,
		Journal:     opts.Journal,
		Logf:        opts.Logf,
		Tracer:      opts.Tracer,
	}, func(ctx context.Context, t campaign.Task) error {
		info := addrOf[t.MTA]
		c := *client
		c.RecipientDomain = recipientDomain[t.MTA]
		res := c.Probe(ctx, info.Addr4, t.MTA, t.Test)
		pc.record(t.Key(), res)
		return probeAttemptErr(res)
	})

	order := append([]*dataset.MTAInfo(nil), w.Population.MTAs...)
	mrand.New(mrand.NewSource(w.cfg.Seed^0x5bd1e995)).Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
	tasks := make([]campaign.Task, 0, len(order)*len(tests))
	for _, info := range order {
		for _, testID := range tests {
			tasks = append(tasks, campaign.Task{MTA: info.ID, Test: testID})
		}
	}
	if opts.Replay != nil {
		tasks = opts.Replay.Unfinished(tasks)
	}
	pc.Campaign.Add(tasks...)
	return pc
}

// record keeps the latest attempt's result per task; a retried
// attempt's outcome supersedes the transient failure before it.
func (pc *ProbeCampaign) record(k campaign.Key, res *probe.Result) {
	pc.mu.Lock()
	pc.results[k] = res
	pc.mu.Unlock()
}

// probeAttemptErr converts a probe outcome into the campaign's
// attempt-error contract. Completed dialogues and 5xx rejections are
// measurement outcomes — the task is done, whatever the MTA said.
// Transport failures, cancellations, and 4xx replies surface as errors
// for the scheduler to classify and retry.
func probeAttemptErr(res *probe.Result) error {
	if res.Err == nil {
		return nil
	}
	var smtpErr *smtp.Error
	if errors.As(res.Err, &smtpErr) && smtpErr.Permanent() {
		return nil
	}
	return res.Err
}

// Run executes the campaign and assembles the ProbeRun. On
// cancellation the partial results collected so far are returned with
// the context error; the journal (if any) lets a later run resume.
func (pc *ProbeCampaign) Run(ctx context.Context) (*ProbeRun, error) {
	run := &ProbeRun{Tests: pc.tests, Started: time.Now()}
	err := pc.Campaign.Run(ctx)
	pc.world.Quiesce()
	pc.mu.Lock()
	run.Results = make(map[string][]*probe.Result, len(pc.results))
	for k, res := range pc.results {
		run.Results[k.MTA] = append(run.Results[k.MTA], res)
	}
	pc.mu.Unlock()
	run.Finished = time.Now()
	return run, err
}
