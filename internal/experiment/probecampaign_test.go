package experiment

import (
	"bytes"
	"context"
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/campaign"
	"sendervalid/internal/mtasim"
	"sendervalid/internal/netsim"
	"sendervalid/internal/probe"
)

// campaignTests is a small test set keeping e2e campaign runs fast.
var campaignTests = []string{"t01", "t12"}

// TestProbeCampaignRetriesNetsimFailures injects transient connect
// failures through the fabric: briefly unreachable MTAs must be
// retried with backoff until they answer, a permanently dead MTA must
// exhaust its attempt budget and fail, and neither may be double-
// counted.
func TestProbeCampaignRetriesNetsimFailures(t *testing.T) {
	w := buildTestWorld(t, smallNotifySpec(40, 21), NotifyRates())

	flaky := w.Population.MTAs[0]
	dead := w.Population.MTAs[1]
	w.Fabric.SetUnreachable(flaky.Addr4, true)
	w.Fabric.SetUnreachable(dead.Addr4, true)
	recover := time.AfterFunc(150*time.Millisecond, func() {
		w.Fabric.SetUnreachable(flaky.Addr4, false)
	})
	defer recover.Stop()

	pc := NewProbeCampaign(w, campaignTests, ProbeCampaignOpts{
		Workers:     16,
		MaxAttempts: 10,
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  80 * time.Millisecond,
	})
	run, err := pc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	s := pc.Snapshot()
	if s.Retried == 0 {
		t.Error("transient connect failures were not retried")
	}
	// The flaky MTA recovered: its tasks must have completed.
	if got := len(run.Results[flaky.ID]); got != len(campaignTests) {
		t.Errorf("flaky MTA has %d results, want %d", got, len(campaignTests))
	}
	for _, r := range run.Results[flaky.ID] {
		// A measurement outcome (completed dialogue or 5xx policy
		// rejection) is success; a transport error means the retry
		// never reached the recovered MTA.
		if probeAttemptErr(r) != nil {
			t.Errorf("flaky MTA result still failing after recovery: %v", r.Err)
		}
	}
	// The dead MTA exhausted its budget and failed; everything else
	// completed.
	if s.Failed != len(campaignTests) {
		t.Errorf("failed %d tasks, want %d (the dead MTA's)", s.Failed, len(campaignTests))
	}
	if want := len(w.Population.MTAs) * len(campaignTests); s.Done != want-len(campaignTests) {
		t.Errorf("done %d, want %d", s.Done, want-len(campaignTests))
	}
}

// TestProbeCampaignTempfailGreylisting exercises 4xx SMTP injection
// via mtasim: a greylisting MTA tempfails its first sessions, and the
// campaign retries through to a completed probe. A 554-rejecting MTA
// is a terminal measurement outcome — recorded, never retried.
func TestProbeCampaignTempfailGreylisting(t *testing.T) {
	fabric := netsim.NewFabric()
	greyAddr := netip.MustParseAddr("203.0.113.201")
	rejectAddr := netip.MustParseAddr("203.0.113.202")

	grey := mtasim.New(mtasim.Config{
		ID: "grey", Hostname: "grey.mx.example", Addr4: greyAddr,
		Profile: mtasim.Profile{AcceptAnyUser: true, TempfailSessions: 2},
		Fabric:  fabric,
	})
	if err := grey.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(grey.Close)

	reject := mtasim.New(mtasim.Config{
		ID: "reject", Hostname: "reject.mx.example", Addr4: rejectAddr,
		Profile: mtasim.Profile{RejectProbe: true, RejectText: "550 listed on spam blacklist"},
		Fabric:  fabric,
	})
	if err := reject.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reject.Close)

	client := &probe.Client{
		Dialer: fabric, Suffix: DefaultTestSuffix,
		HeloDomain: "probe.example", RecipientDomain: "target.example",
		Timeout: 5 * time.Second,
	}
	addrs := map[string]netip.Addr{"grey": greyAddr, "reject": rejectAddr}
	var mu sync.Mutex
	results := make(map[campaign.Key]*probe.Result)
	c := campaign.New(campaign.Config{
		Workers: 4, MaxAttempts: 5,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
	}, func(ctx context.Context, task campaign.Task) error {
		res := client.Probe(ctx, addrs[task.MTA], task.MTA, task.Test)
		mu.Lock()
		results[task.Key()] = res
		mu.Unlock()
		return probeAttemptErr(res)
	})
	c.Add(campaign.Task{MTA: "grey", Test: "t12"}, campaign.Task{MTA: "reject", Test: "t12"})
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	if st := grey.Stats(); st.TempfailedSessions != 2 || st.Sessions != 3 {
		t.Errorf("greylisting MTA saw %d sessions (%d tempfailed), want 3 (2)",
			st.Sessions, st.TempfailedSessions)
	}
	if res := results[campaign.Key{MTA: "grey", Test: "t12"}]; res.Stage != probe.StageDone {
		t.Errorf("greylisted probe did not complete after retries: %+v", res)
	}
	if st := reject.Stats(); st.Sessions != 1 {
		t.Errorf("554-rejecting MTA saw %d sessions: terminal outcomes must not be retried", st.Sessions)
	}
	s := c.Snapshot()
	if s.Done != 2 || s.Failed != 0 {
		t.Errorf("done %d failed %d, want 2/0 (a 554 rejection is a measurement outcome)", s.Done, s.Failed)
	}
	if s.Retried != 2 {
		t.Errorf("retried %d, want 2 (the greylisting tempfails)", s.Retried)
	}
}

// TestProbeCampaignResume cancels a journaled campaign mid-run and
// resumes it: the union of both runs covers every (MTA, test) pair
// exactly once.
func TestProbeCampaignResume(t *testing.T) {
	w := buildTestWorld(t, smallNotifySpec(60, 23), NotifyRates())
	totalTasks := len(w.Population.MTAs) * len(campaignTests)
	var journal bytes.Buffer

	ctx, cancel := context.WithCancel(context.Background())
	pc1 := NewProbeCampaign(w, campaignTests, ProbeCampaignOpts{
		Workers: 4, Journal: &journal,
	})
	go func() {
		for pc1.Snapshot().Completed() < totalTasks/2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, err := pc1.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v", err)
	}
	finished1 := pc1.Snapshot().Completed()
	if finished1 == 0 || finished1 >= totalTasks {
		t.Fatalf("cancellation did not land mid-run: %d of %d", finished1, totalTasks)
	}

	replay, err := campaign.ReadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(replay.Final); got != finished1 {
		t.Errorf("journal replay sees %d finished, campaign reported %d", got, finished1)
	}

	pc2 := NewProbeCampaign(w, campaignTests, ProbeCampaignOpts{
		Workers: 4, Journal: &journal, Replay: replay,
	})
	if got := pc2.Snapshot().Total; got != totalTasks-finished1 {
		t.Errorf("resumed campaign enqueued %d tasks, want %d unfinished", got, totalTasks-finished1)
	}
	if _, err := pc2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	full, err := campaign.ReadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(full.Final); got != totalTasks {
		t.Errorf("journal records %d finished tasks, want %d", got, totalTasks)
	}
	// Exactly once: finished counts across runs partition the task set.
	if finished1+pc2.Snapshot().Completed() != totalTasks {
		t.Errorf("runs overlap: %d + %d != %d", finished1, pc2.Snapshot().Completed(), totalTasks)
	}
}

// TestProbeCampaignRateLimit verifies the politeness budget end to
// end: no MTA sees SMTP sessions faster than its bucket allows, while
// the fleet-wide rate exceeds any single MTA's.
func TestProbeCampaignRateLimit(t *testing.T) {
	fabric := netsim.NewFabric()
	const rate = 25.0
	mtas := make([]*mtasim.MTA, 5)
	addrs := make(map[string]netip.Addr, len(mtas))
	var grants struct {
		mu    chan struct{}
		times map[string][]time.Time
	}
	grants.mu = make(chan struct{}, 1)
	grants.mu <- struct{}{}
	grants.times = make(map[string][]time.Time)

	tasks := make([]campaign.Task, 0, len(mtas)*6)
	for i := range mtas {
		id := string(rune('a' + i))
		addr := netip.MustParseAddr("203.0.113.1" + string(rune('0'+i)))
		m := mtasim.New(mtasim.Config{
			ID: id, Hostname: id + ".mx.example", Addr4: addr,
			Profile: mtasim.Profile{AcceptAnyUser: true},
			Fabric:  fabric,
		})
		if err := m.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
		mtas[i] = m
		addrs[id] = addr
		for j := 0; j < 6; j++ {
			tasks = append(tasks, campaign.Task{MTA: id, Test: testID(j + 1)})
		}
	}

	client := &probe.Client{
		Dialer: fabric, Suffix: DefaultTestSuffix,
		HeloDomain: "probe.example", RecipientDomain: "target.example",
		Timeout: 5 * time.Second,
	}
	c := campaign.New(campaign.Config{
		Workers: 16, ShardRate: rate, ShardBurst: 1,
	}, func(ctx context.Context, task campaign.Task) error {
		<-grants.mu
		grants.times[task.MTA] = append(grants.times[task.MTA], time.Now())
		grants.mu <- struct{}{}
		res := client.Probe(ctx, addrs[task.MTA], task.MTA, task.Test)
		return probeAttemptErr(res)
	})
	c.Add(tasks...)
	start := time.Now()
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	minGap := time.Duration(0.8 / rate * float64(time.Second))
	for id, times := range grants.times {
		for i := 1; i < len(times); i++ {
			if gap := times[i].Sub(times[i-1]); gap < minGap {
				t.Errorf("MTA %s probed %v apart, budget requires ≥ %v", id, gap, minGap)
			}
		}
	}
	if aggregate := float64(len(tasks)) / elapsed.Seconds(); aggregate <= rate {
		t.Errorf("aggregate %.1f probes/s does not exceed the single-MTA budget %.1f/s", aggregate, rate)
	}
}
