package experiment

import (
	"context"
	"strings"
	"sync"
	"time"

	"sendervalid/internal/dataset"
	"sendervalid/internal/probe"
	"sendervalid/internal/spf"
)

// spfCompliant clears every violation knob, leaving timing options.
func spfCompliant(o spf.Options) spf.Options {
	o.LookupLimit = 0
	o.VoidLookupLimit = 0
	o.MXAddressLimit = 0
	o.IgnoreSyntaxErrors = false
	o.FollowMultipleRecords = false
	o.MXFallbackA = false
	o.Prefetch = false
	return o
}

// NotifyEmailRun is the raw outcome of the NotifyEmail experiment.
type NotifyEmailRun struct {
	// Deliveries records one entry per domain, keyed by domain ID.
	Deliveries map[string]*probe.Delivery
	// Started and Finished bound the run.
	Started, Finished time.Time
}

// RunNotifyEmail delivers one legitimate, DKIM-signed notification to
// every domain of the population (paper §4.6): standard MX selection,
// first responsive MTA only, real message content.
func RunNotifyEmail(ctx context.Context, w *World, workers int) *NotifyEmailRun {
	if workers <= 0 {
		workers = 32
	}
	sender := &probe.Sender{
		Dialer:     w.Fabric.BoundDialer(SenderAddr4, SenderAddr6),
		Suffix:     DefaultNotifySuffix,
		HeloDomain: "mta.dns-lab.example",
		Signer:     w.Signer,
		ReplyTo:    DefaultContact,
		Timeout:    10 * time.Second,
	}
	run := &NotifyEmailRun{
		Deliveries: make(map[string]*probe.Delivery, len(w.Population.Domains)),
		Started:    time.Now(),
	}
	res := w.senderResolver()

	var mu sync.Mutex
	jobs := make(chan *dataset.Domain)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range jobs {
				// Real mail-server selection: MX lookup, preference
				// order, address resolution (RFC 5321 §5.1).
				targets, err := ResolveTargets(ctx, res, d.Name)
				if err != nil {
					mu.Lock()
					run.Deliveries[d.ID] = &probe.Delivery{
						DomainID: d.ID, Recipient: "operator@" + d.Name, Err: err,
					}
					mu.Unlock()
					continue
				}
				delivery := sender.Send(ctx, d.ID, "operator@"+d.Name, targets,
					"Action required: vulnerability disclosed in your network",
					"Dear operator,\n\nduring a measurement study we detected a "+
						"vulnerability in your network. Details and remediation "+
						"guidance follow.\n")
				mu.Lock()
				run.Deliveries[d.ID] = delivery
				mu.Unlock()
			}
		}()
	}
	for _, d := range w.Population.Domains {
		if ctx.Err() != nil {
			break
		}
		jobs <- d
	}
	close(jobs)
	wg.Wait()
	w.Quiesce()
	run.Finished = time.Now()
	return run
}

// DomainValidation summarizes one domain's observed validation.
type DomainValidation struct {
	SPF   bool
	DKIM  bool
	DMARC bool
	// SPFComplete reports that address lookups completing the SPF
	// evaluation were observed; SPF && !SPFComplete is the paper's
	// "partial validator" (§6.1).
	SPFComplete bool
}

// ComboKey renders the validation combination as a Table 4 row key.
func (v DomainValidation) ComboKey() string {
	mark := func(b bool) string {
		if b {
			return "Y"
		}
		return "n"
	}
	return mark(v.SPF) + mark(v.DKIM) + mark(v.DMARC)
}

// NotifyEmailAnalysis aggregates the experiment into the paper's
// Tables 4–7 and Figure 2 inputs.
type NotifyEmailAnalysis struct {
	Domains   int
	Delivered int

	// Per-domain validation status (key: domain ID).
	Validation map[string]DomainValidation

	// Table 4: combination -> domain count (keys like "YYn").
	Combos map[string]int

	SPFDomains   int
	DKIMDomains  int
	DMARCDomains int

	// SPF-validating MTA count (over contacted MTAs).
	SPFMTAs       int
	ContactedMTAs int

	// Partial validators (§6.1): TXT fetched, no completing lookups.
	PartialDomains      int
	PartialSPFOnly      int
	PartialSPFOnlyDMARC int

	// Table 6 rows.
	Providers []ProviderRow

	// Table 7 rows.
	Alexa AlexaBreakdown

	// Figure 2: per-domain averaged tSPF − tEmail, in seconds of
	// paper-equivalent time (sample / TimeScale).
	TimingSamples []float64
	// TimingFiltered counts samples dropped by the sub-granularity
	// filter (§6.2 dropped 0–1 s differences; scaled here).
	TimingFiltered int
}

// ProviderRow is one Table 6 line.
type ProviderRow struct {
	Domain   string
	SPF      bool
	DKIM     bool
	DMARC    bool
	Expected dataset.Provider
}

// AlexaBreakdown is Table 7.
type AlexaBreakdown struct {
	All, Top1M, Top1K                int
	SPFAll, SPFTop1M, SPFTop1K       int
	DKIMAll, DKIMTop1M, DKIMTop1K    int
	DMARCAll, DMARCTop1M, DMARCTop1K int
}

// AnalyzeNotifyEmail derives the NotifyEmail results from the query
// log and the delivery records.
func AnalyzeNotifyEmail(w *World, run *NotifyEmailRun) *NotifyEmailAnalysis {
	a := &NotifyEmailAnalysis{
		Domains:    len(w.Population.Domains),
		Validation: make(map[string]DomainValidation),
		Combos:     make(map[string]int),
	}

	// Classify every logged query under the NotifyEmail zone by
	// domain id.
	type domainObs struct {
		spfTXT   bool
		spfAddr  bool
		dkim     bool
		dmarc    bool
		firstTXT time.Time
	}
	obs := make(map[string]*domainObs)
	suffix := DefaultNotifySuffix
	for _, e := range w.Log.Entries() {
		if !strings.HasSuffix(e.Name, suffix) || e.MTAID == "" {
			continue
		}
		o := obs[e.MTAID]
		if o == nil {
			o = &domainObs{}
			obs[e.MTAID] = o
		}
		switch {
		case len(e.Rest) == 0 && e.Type.String() == "TXT":
			if !o.spfTXT || e.Time.Before(o.firstTXT) {
				o.firstTXT = e.Time
			}
			o.spfTXT = true
		case len(e.Rest) == 1 && (e.Rest[0] == "mta" || e.Rest[0] == "l1" || e.Rest[0] == "l2" || e.Rest[0] == "l3"):
			// Any follow-up shows evaluation progressed; the "a"
			// target (mta) marks completion.
			if e.Rest[0] == "mta" {
				o.spfAddr = true
			}
		case len(e.Rest) == 2 && e.Rest[1] == "_domainkey":
			o.dkim = true
		case len(e.Rest) == 1 && e.Rest[0] == "_dmarc":
			o.dmarc = true
		}
	}

	// MTA-level SPF observation: which MTAs issued NotifyEmail-zone
	// queries. The resolver address identifies the MTA only indirectly,
	// so count via per-MTA stats instead.
	contacted := make(map[string]bool)
	for _, d := range w.Population.Domains {
		delivery := run.Deliveries[d.ID]
		if delivery != nil && delivery.Delivered {
			a.Delivered++
			for _, m := range d.MTAs {
				if m.Addr4 == delivery.MTAAddr || m.Addr6 == delivery.MTAAddr {
					contacted[m.ID] = true
				}
			}
		}
	}
	a.ContactedMTAs = len(contacted)
	for id := range contacted {
		if w.MTAs[id].Stats().SPFChecks > 0 {
			a.SPFMTAs++
		}
	}

	providerRows := make(map[string]*ProviderRow)
	for _, d := range w.Population.Domains {
		o := obs[d.ID]
		v := DomainValidation{}
		if o != nil {
			v.SPF = o.spfTXT
			v.SPFComplete = o.spfAddr
			v.DKIM = o.dkim
			v.DMARC = o.dmarc
		}
		a.Validation[d.ID] = v
		a.Combos[v.ComboKey()]++
		if v.SPF {
			a.SPFDomains++
			if !v.SPFComplete {
				a.PartialDomains++
				if !v.DKIM {
					a.PartialSPFOnly++
					if v.DMARC {
						a.PartialSPFOnlyDMARC++
					}
				}
			}
		}
		if v.DKIM {
			a.DKIMDomains++
		}
		if v.DMARC {
			a.DMARCDomains++
		}

		if d.Provider != nil {
			providerRows[d.Name] = &ProviderRow{
				Domain: d.Name, SPF: v.SPF, DKIM: v.DKIM, DMARC: v.DMARC,
				Expected: *d.Provider,
			}
		}

		// Table 7 tallies.
		a.Alexa.All++
		if v.SPF {
			a.Alexa.SPFAll++
		}
		if v.DKIM {
			a.Alexa.DKIMAll++
		}
		if v.DMARC {
			a.Alexa.DMARCAll++
		}
		if d.AlexaRank > 0 {
			a.Alexa.Top1M++
			if v.SPF {
				a.Alexa.SPFTop1M++
			}
			if v.DKIM {
				a.Alexa.DKIMTop1M++
			}
			if v.DMARC {
				a.Alexa.DMARCTop1M++
			}
			if d.AlexaRank <= 1000 {
				a.Alexa.Top1K++
				if v.SPF {
					a.Alexa.SPFTop1K++
				}
				if v.DKIM {
					a.Alexa.DKIMTop1K++
				}
				if v.DMARC {
					a.Alexa.DMARCTop1K++
				}
			}
		}

		// Figure 2 timing: tSPF − tEmail, scaled back to paper seconds.
		delivery := run.Deliveries[d.ID]
		if o != nil && o.spfTXT && delivery != nil && delivery.Delivered {
			diff := o.firstTXT.Sub(delivery.AcceptedAt).Seconds() / w.cfg.TimeScale
			// The paper's 1 s timestamp-granularity filter, scaled: the
			// sub-resolution band around zero is dropped (§6.2).
			if diff > -1 && diff < 1 {
				a.TimingFiltered++
			} else {
				a.TimingSamples = append(a.TimingSamples, diff)
			}
		}
	}

	// Order provider rows as Table 6 lists them.
	for i := range dataset.Providers {
		if row, ok := providerRows[dataset.Providers[i].Domain]; ok {
			a.Providers = append(a.Providers, *row)
		}
	}
	return a
}

// Figure2Buckets is the histogram of Figure 2: bucket edges at −30,
// −15, 0, 15, 30 seconds (paper-equivalent time).
type Figure2Buckets struct {
	LE30Neg, Neg15, Neg0, Pos15, Pos30, GE30 int
	Total                                    int
}

// Bucketize sorts timing samples into the Figure 2 histogram.
func Bucketize(samples []float64) Figure2Buckets {
	var b Figure2Buckets
	for _, s := range samples {
		switch {
		case s <= -30:
			b.LE30Neg++
		case s <= -15:
			b.Neg15++
		case s <= 0:
			b.Neg0++
		case s <= 15:
			b.Pos15++
		case s <= 30:
			b.Pos30++
		default:
			b.GE30++
		}
		b.Total++
	}
	return b
}

// NegativeFraction is the share of domains whose SPF lookup preceded
// delivery (the paper reports 83%).
func (b Figure2Buckets) NegativeFraction() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.LE30Neg+b.Neg15+b.Neg0) / float64(b.Total)
}
