package experiment

import (
	"context"
	"fmt"
	"sort"

	"sendervalid/internal/dataset"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/probe"
	"sendervalid/internal/resolver"
)

// recipientZone publishes the population's recipient-domain DNS: MX
// record sets for every domain and A/AAAA records for every MX host.
// With it, the NotifyEmail sender performs real, specification-shaped
// mail-server selection — MX lookup, preference ordering, address
// resolution — instead of reading targets out of the dataset structs
// (paper §4.6: deliveries complied "as closely as possible to
// specification, including mail server selection").
func recipientZone(pop *dataset.Population) *dnsserver.Zone {
	static := dnsserver.NewStatic()
	for _, d := range pop.Domains {
		for i, m := range d.MTAs {
			static.MX(d.Name, uint16(10*(i+1)), m.Hostname+".")
		}
	}
	for _, m := range pop.MTAs {
		if m.Addr4.IsValid() {
			static.A(m.Hostname, m.Addr4)
		}
		if m.Addr6.IsValid() {
			static.AAAA(m.Hostname, m.Addr6)
		}
	}
	return &dnsserver.Zone{
		// A catch-all zone: recipient domains span arbitrary TLDs.
		Suffix:     ".",
		LabelDepth: 1,
		NoLog:      true,
		Default:    static,
	}
}

// ResolveTargets performs the sending MTA's recipient resolution: MX
// lookup, preference ordering, and A/AAAA resolution of each exchanger
// (RFC 5321 §5.1). It returns the delivery targets in preference
// order.
func ResolveTargets(ctx context.Context, res *resolver.Resolver, domain string) ([]probe.Target, error) {
	mxs, err := res.LookupMX(ctx, domain)
	if err != nil {
		return nil, fmt.Errorf("experiment: MX %s: %w", domain, err)
	}
	if len(mxs) == 0 {
		// Implicit MX (RFC 5321 §5.1): fall back to the domain's own
		// address records.
		return resolveHost(ctx, res, domain)
	}
	sort.SliceStable(mxs, func(i, j int) bool { return mxs[i].Preference < mxs[j].Preference })
	var out []probe.Target
	for _, mx := range mxs {
		targets, err := resolveHost(ctx, res, mx.Host)
		if err != nil {
			continue
		}
		out = append(out, targets...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: no address records for any MX of %s", domain)
	}
	return out, nil
}

func resolveHost(ctx context.Context, res *resolver.Resolver, host string) ([]probe.Target, error) {
	var t probe.Target
	if a, err := res.LookupA(ctx, host); err == nil && len(a) > 0 {
		t.Addr4 = a[0]
	}
	if aaaa, err := res.LookupAAAA(ctx, host); err == nil && len(aaaa) > 0 {
		t.Addr6 = aaaa[0]
	}
	if !t.Addr4.IsValid() && !t.Addr6.IsValid() {
		return nil, fmt.Errorf("experiment: %s has no address records", host)
	}
	return []probe.Target{t}, nil
}

// senderResolver builds the sending MTA's resolver against the world's
// DNS service.
func (w *World) senderResolver() *resolver.Resolver {
	return resolver.New(resolver.Config{
		Server:  w.DNSAddr,
		Server6: w.DNSAddr6,
		Timeout: w.cfg.DNSTimeout,
	})
}

// mxHostCount reports how many MX host records the recipient zone
// holds (used by tests).
func mxHostCount(z *dnsserver.Zone) int {
	static, ok := z.Default.(*dnsserver.Static)
	if !ok {
		return 0
	}
	return static.Len()
}
