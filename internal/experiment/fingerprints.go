package experiment

import (
	"fmt"
	"strings"

	"sendervalid/internal/dnsserver"
	"sendervalid/internal/fingerprint"
)

// AnalyzeFingerprints distills per-MTA behaviour vectors from the
// world's query log and clusters them into behavioural families — the
// paper's proposed §8 follow-up ("classify and even fingerprint an SPF
// validator implementation").
func AnalyzeFingerprints(w *World) ([]fingerprint.Cluster, map[string]*fingerprint.Vector) {
	return AnalyzeFingerprintEntries(w.Log.Entries())
}

// AnalyzeFingerprintEntries is the offline (log-file) variant.
func AnalyzeFingerprintEntries(log []dnsserver.LogEntry) ([]fingerprint.Cluster, map[string]*fingerprint.Vector) {
	vectors := fingerprint.Extract(log)
	return fingerprint.Clusters(vectors), vectors
}

// RenderFingerprints prints the behaviour-family summary with
// reference-implementation classification of the biggest families.
func RenderFingerprints(clusters []fingerprint.Cluster, vectors map[string]*fingerprint.Vector, top int) string {
	var sb strings.Builder
	sb.WriteString("Section 8 (future work): validator fingerprints\n")
	fmt.Fprintf(&sb, "  trait order: %s\n", strings.Join(fingerprint.TraitNames, " "))
	total := 0
	for _, c := range clusters {
		total += len(c.MTAs)
	}
	fmt.Fprintf(&sb, "  %d MTAs fall into %d behavioural families\n", total, len(clusters))
	refs := fingerprint.References()
	shown := 0
	for _, c := range clusters {
		if shown >= top {
			break
		}
		shown++
		label := "unclassified"
		if v := vectors[c.MTAs[0]]; v != nil {
			if matches := fingerprint.Classify(v, refs); len(matches) > 0 {
				label = fmt.Sprintf("nearest %s (%.0f%% agree)",
					matches[0].Name, 100*matches[0].Score())
			}
		}
		fmt.Fprintf(&sb, "  [%s] %4d MTAs  %s\n", c.Signature, len(c.MTAs), label)
	}
	if len(clusters) > shown {
		fmt.Fprintf(&sb, "  ... and %d smaller families\n", len(clusters)-shown)
	}
	return sb.String()
}
