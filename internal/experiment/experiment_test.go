package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"sendervalid/internal/dataset"
	"sendervalid/internal/mtasim"
)

// smallNotifySpec shrinks the NotifyEmail spec for test runs.
func smallNotifySpec(n int, seed int64) dataset.Spec {
	spec := dataset.NotifyEmailSpec(seed)
	spec.NumDomains = n
	spec.AlexaTop1M = n / 9
	spec.AlexaTop1K = n / 60
	return spec
}

func smallTwoWeekSpec(n int, seed int64) dataset.Spec {
	spec := dataset.TwoWeekMXSpec(seed)
	spec.NumDomains = n
	spec.LocalDomains = 2
	return spec
}

func buildTestWorld(t *testing.T, spec dataset.Spec, rates mtasim.Rates) *World {
	t.Helper()
	pop := dataset.Generate(spec)
	w, err := BuildWorld(pop, WorldConfig{
		Seed:       spec.Seed,
		Rates:      rates,
		TimeScale:  0.0005,
		SPFTimeout: 20 * time.Second,
		DNSTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestNotifyEmailExperiment(t *testing.T) {
	w := buildTestWorld(t, smallNotifySpec(240, 11), NotifyRates())
	run := RunNotifyEmail(context.Background(), w, 24)
	a := AnalyzeNotifyEmail(w, run)

	if a.Delivered < a.Domains*95/100 {
		t.Fatalf("only %d of %d deliveries succeeded", a.Delivered, a.Domains)
	}
	spfRate := float64(a.SPFDomains) / float64(a.Domains)
	if spfRate < 0.70 || spfRate > 0.95 {
		t.Errorf("SPF-validating domain rate %.2f, paper ≈ 0.85", spfRate)
	}
	dkimRate := float64(a.DKIMDomains) / float64(a.Domains)
	if dkimRate < 0.65 || dkimRate > 0.95 {
		t.Errorf("DKIM rate %.2f, paper ≈ 0.82", dkimRate)
	}
	dmarcRate := float64(a.DMARCDomains) / float64(a.Domains)
	if dmarcRate < 0.35 || dmarcRate > 0.70 {
		t.Errorf("DMARC rate %.2f, paper ≈ 0.54", dmarcRate)
	}

	// Table 4 shape: all-three is the biggest combo; SPF+DKIM second
	// among validating combos.
	if a.Combos["YYY"] <= a.Combos["YYn"] {
		t.Errorf("combo ordering: YYY=%d YYn=%d", a.Combos["YYY"], a.Combos["YYn"])
	}
	if a.Combos["nnn"] == 0 {
		t.Error("no non-validating domains at all")
	}

	// Table 6: observed provider validation must equal the pinned
	// expectations.
	if len(a.Providers) != len(dataset.Providers) {
		t.Fatalf("provider rows: %d", len(a.Providers))
	}
	for _, row := range a.Providers {
		if row.SPF != row.Expected.SPF || row.DKIM != row.Expected.DKIM {
			t.Errorf("%s observed (%v,%v,%v), expected (%v,%v,%v)",
				row.Domain, row.SPF, row.DKIM, row.DMARC,
				row.Expected.SPF, row.Expected.DKIM, row.Expected.DMARC)
		}
	}

	// Table 7 monotonicity: top-1K ≥ top-1M ≥ all for SPF share.
	al := a.Alexa
	if al.Top1M == 0 || al.Top1K == 0 {
		t.Fatal("no Alexa members in population")
	}
	allRate := float64(al.SPFAll) / float64(al.All)
	top1MRate := float64(al.SPFTop1M) / float64(al.Top1M)
	top1KRate := float64(al.SPFTop1K) / float64(al.Top1K)
	if top1MRate < allRate-0.05 || top1KRate < top1MRate-0.10 {
		t.Errorf("Alexa SPF rates not increasing: all=%.2f 1M=%.2f 1K=%.2f",
			allRate, top1MRate, top1KRate)
	}

	// Figure 2: most validation happens before delivery completes.
	b := Bucketize(a.TimingSamples)
	if b.Total == 0 {
		t.Fatal("no timing samples")
	}
	// The upper bound leaves headroom for scheduler-load skew: under
	// -race the post-data validation window can slip past delivery for
	// a few extra domains (seen up to 0.96 on unmodified code).
	if frac := b.NegativeFraction(); frac < 0.70 || frac > 0.98 {
		t.Errorf("negative timing fraction %.2f, paper ≈ 0.83", frac)
	}

	// Rendering must mention the key identifiers.
	for _, out := range []string{
		RenderTable4(a), RenderTable6(a), RenderTable7(a), RenderFigure2(a),
	} {
		if len(out) == 0 {
			t.Error("empty rendering")
		}
	}
	if !strings.Contains(RenderTable6(a), "gmail.com") {
		t.Error("Table 6 rendering lacks providers")
	}
}

func TestNotifyMXExperiment(t *testing.T) {
	// Same population recipe as NotifyEmail, probed instead of mailed:
	// the §6.2 contrast.
	w := buildTestWorld(t, smallNotifySpec(240, 13), NotifyRates())
	run := RunProbes(context.Background(), w, []string{"t12"}, 24)
	a := AnalyzeProbes(w, run, false)

	rate := float64(a.SPFDomains) / float64(a.Domains)
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("NotifyMX SPF domain rate %.2f, paper ≈ 0.51", rate)
	}
	// The probe client is blacklisted: a large minority rejects it.
	rejected := a.SpamRejected + a.BlacklistRejected
	if rejected == 0 {
		t.Error("no spam/blacklist rejections observed")
	}
	if a.ProbesTotal != len(w.Population.MTAs) {
		t.Errorf("probes: %d for %d MTAs", a.ProbesTotal, len(w.Population.MTAs))
	}
	out := RenderTable5([]*ProbeAnalysis{a}, nil)
	if !strings.Contains(out, "NotifyEmail") && !strings.Contains(out, a.Name) {
		t.Errorf("Table 5 rendering:\n%s", out)
	}
}

func TestTwoWeekMXExperiment(t *testing.T) {
	w := buildTestWorld(t, smallTwoWeekSpec(300, 17), TwoWeekRates())
	run := RunProbes(context.Background(), w, []string{"t12"}, 24)
	a := AnalyzeProbes(w, run, true)

	rate := float64(a.SPFDomains) / float64(a.Domains)
	if rate < 0.04 || rate > 0.30 {
		t.Errorf("TwoWeekMX SPF domain rate %.2f, paper ≈ 0.13", rate)
	}
	if len(a.Deciles) != 10 {
		t.Fatalf("deciles: %d", len(a.Deciles))
	}
	total := 0
	for _, d := range a.Deciles {
		total += d.Domains
	}
	if total != a.Domains-2 { // minus the local domains
		t.Errorf("decile coverage %d of %d", total, a.Domains)
	}
	// Postmaster dominates recipients (paper: 69%).
	if a.PostmasterUsed == 0 {
		t.Error("postmaster never used")
	}
}

func TestBehaviorAnalyses(t *testing.T) {
	// A small fleet probed with the behaviour-revealing tests.
	w := buildTestWorld(t, smallNotifySpec(160, 19), NotifyRates())
	tests := []string{"t01", "t02", "t03", "t04", "t05", "t06", "t07", "t08", "t09", "t11"}
	RunProbes(context.Background(), w, tests, 24)

	sp := AnalyzeSerialParallel(w)
	if sp.Tested == 0 {
		t.Fatal("no MTAs classifiable for serial/parallel")
	}
	serialFrac := float64(sp.Serial) / float64(sp.Tested)
	if serialFrac < 0.85 {
		t.Errorf("serial fraction %.2f, paper ≈ 0.97", serialFrac)
	}

	ll := AnalyzeLookupLimits(w)
	if ll.Tested == 0 {
		t.Fatal("no MTAs tested for lookup limits")
	}
	haltFrac := float64(ll.HaltedBeforeTen) / float64(ll.Tested)
	ranAllFrac := float64(ll.RanAll) / float64(ll.Tested)
	if haltFrac < 0.40 || haltFrac > 0.85 {
		t.Errorf("halted-before-10 fraction %.2f, paper ≈ 0.61", haltFrac)
	}
	if ranAllFrac < 0.10 || ranAllFrac > 0.50 {
		t.Errorf("ran-all fraction %.2f, paper ≈ 0.28", ranAllFrac)
	}
	if cdf := ll.CDF(); len(cdf) == 0 || cdf[len(cdf)-1].Fraction != 1 {
		t.Errorf("CDF malformed: %v", cdf)
	}

	b := AnalyzeBehaviors(w)
	if b.VoidExceeded.Tested == 0 || b.MXFallback.Tested == 0 || b.MultipleNone.Tested == 0 {
		t.Fatalf("behaviour analyses missing data: %+v", b)
	}
	if f := b.VoidExceeded.Fraction(); f < 0.80 {
		t.Errorf("void-exceeded fraction %.2f, paper ≈ 0.97", f)
	}
	if f := b.MultipleNone.Fraction(); f < 0.55 || f > 0.95 {
		t.Errorf("multiple-none fraction %.2f, paper ≈ 0.77", f)
	}
	if b.MultipleBoth.Observed != 0 {
		t.Errorf("an MTA followed both policies (paper observed none): %+v", b.MultipleBoth)
	}
	if f := b.TCPRetried.Fraction(); f < 0.95 {
		t.Errorf("TCP retry fraction %.2f, paper ≈ 0.999", f)
	}
	if f := b.MXAllTwenty.Fraction(); f < 0.40 {
		t.Errorf("all-20-MX fraction %.2f, paper ≈ 0.64", f)
	}
	if b.HELOChecked.Observed > 0 && b.ContinuedToMail.Fraction() != 1 {
		t.Errorf("HELO checkers must all continue to MAIL: %+v", b.ContinuedToMail)
	}

	out := RenderBehaviors(sp, b)
	for _, want := range []string{"serial", "void", "TCP", "MX"} {
		if !strings.Contains(out, want) {
			t.Errorf("behaviour rendering lacks %q:\n%s", want, out)
		}
	}
	_ = RenderFigure5(ll, 0.8)
}

func TestFingerprintPipeline(t *testing.T) {
	w := buildTestWorld(t, smallNotifySpec(120, 29), NotifyRates())
	RunProbes(context.Background(), w,
		[]string{"t01", "t02", "t04", "t05", "t06", "t07", "t08", "t09", "t11"}, 24)
	clusters, vectors := AnalyzeFingerprints(w)
	if len(clusters) == 0 || len(vectors) == 0 {
		t.Fatal("no fingerprints extracted")
	}
	// Every vector belongs to exactly one cluster.
	covered := 0
	for _, c := range clusters {
		covered += len(c.MTAs)
	}
	if covered != len(vectors) {
		t.Errorf("clusters cover %d of %d vectors", covered, len(vectors))
	}
	// The dominant family should be the compliant serial validator:
	// y (serial), y (lookup-limit), n (full tree) prefix.
	if !strings.HasPrefix(clusters[0].Signature, "yyn") {
		t.Errorf("dominant family %q", clusters[0].Signature)
	}
	out := RenderFingerprints(clusters, vectors, 5)
	if !strings.Contains(out, "behavioural families") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestRenderStaticTables(t *testing.T) {
	ne := dataset.Generate(smallNotifySpec(300, 23))
	tw := dataset.Generate(smallTwoWeekSpec(300, 23))
	t1 := RenderTable1(ne, tw)
	if !strings.Contains(t1, "com") || !strings.Contains(t1, "total TLDs") {
		t.Errorf("Table 1:\n%s", t1)
	}
	t2 := RenderTable2([]Table2Row{Table2RowFor(ne), Table2RowFor(tw)})
	if !strings.Contains(t2, "NotifyEmail") || !strings.Contains(t2, "TwoWeekMX") {
		t.Errorf("Table 2:\n%s", t2)
	}
	t3 := RenderTable3(ne, tw)
	if !strings.Contains(t3, "AS15169") || !strings.Contains(t3, "Google") {
		t.Errorf("Table 3:\n%s", t3)
	}
}

func TestAllTestsList(t *testing.T) {
	all := AllTests()
	if len(all) != 39 || all[0] != "t01" || all[38] != "t39" {
		t.Errorf("AllTests: %v", all)
	}
}

func TestSortedComboKeys(t *testing.T) {
	keys := SortedComboKeys(map[string]int{"nnn": 1, "YYY": 2, "zzz": 3})
	if len(keys) != 3 || keys[0] != "YYY" || keys[2] != "zzz" {
		t.Errorf("keys %v", keys)
	}
}

func TestBucketize(t *testing.T) {
	b := Bucketize([]float64{-45, -20, -5, 5, 20, 45})
	if b.LE30Neg != 1 || b.Neg15 != 1 || b.Neg0 != 1 ||
		b.Pos15 != 1 || b.Pos30 != 1 || b.GE30 != 1 {
		t.Errorf("buckets %+v", b)
	}
	if b.NegativeFraction() != 0.5 {
		t.Errorf("negative fraction %.2f", b.NegativeFraction())
	}
	if (Figure2Buckets{}).NegativeFraction() != 0 {
		t.Error("empty buckets")
	}
}

func TestCrossExperimentConsistency(t *testing.T) {
	// The §6.2 contrast: the same population mailed and probed.
	pop := dataset.Generate(smallNotifySpec(300, 47))
	neWorld, err := BuildWorld(pop, WorldConfig{
		Seed: 47, Rates: NotifyRates(), TimeScale: 0.0005,
	})
	if err != nil {
		t.Fatal(err)
	}
	neRun := RunNotifyEmail(context.Background(), neWorld, 24)
	ne := AnalyzeNotifyEmail(neWorld, neRun)
	neWorld.Close()

	probeWorld, err := BuildWorld(pop, WorldConfig{
		Seed: 53, Rates: NotifyRates(), TimeScale: 0.0005,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer probeWorld.Close()
	probeRun := RunProbes(context.Background(), probeWorld, []string{"t12"}, 24)
	probes := AnalyzeProbes(probeWorld, probeRun, false)

	c := Compare(neWorld, ne, probes)
	if c.CommonDomains != 300 {
		t.Fatalf("common domains %d", c.CommonDomains)
	}
	if c.Inconsistent() == 0 {
		t.Fatal("no inconsistencies observed — the §6.2 contrast vanished")
	}
	// The dominant inconsistency is mail-validated-but-probe-silent
	// (paper: 95% of inconsistencies).
	if f := c.EmailOnlyFraction(); f < 0.75 {
		t.Errorf("email-only fraction %.2f, paper ≈ 0.95", f)
	}
	// Re-observation rate near the paper's 65%.
	if f := c.ReobservedFraction(); f < 0.45 || f > 0.85 {
		t.Errorf("re-observed fraction %.2f, paper ≈ 0.65", f)
	}
	out := RenderConsistency(c)
	if !strings.Contains(out, "re-observed") {
		t.Errorf("rendering:\n%s", out)
	}
}

func TestFullCatalogProbeRun(t *testing.T) {
	// Drive all 39 test policies through the complete probe pipeline
	// against a small fleet: every policy must be servable end to end
	// without stalling a probe or crashing an MTA.
	w := buildTestWorld(t, smallNotifySpec(60, 59), NotifyRates())
	run := RunProbes(context.Background(), w, AllTests(), 16)
	if got := len(run.Results); got != len(w.Population.MTAs) {
		t.Fatalf("results for %d of %d MTAs", got, len(w.Population.MTAs))
	}
	probesPerMTA := 0
	for _, results := range run.Results {
		probesPerMTA = len(results)
		break
	}
	if probesPerMTA != 39 {
		t.Errorf("probes per MTA: %d", probesPerMTA)
	}
	// Validating MTAs must have touched the extended policies too.
	tests := w.Log.ByTest()
	for _, id := range []string{"t13", "t16", "t27", "t37", "t39"} {
		if len(tests[id]) == 0 {
			t.Errorf("no queries observed for %s", id)
		}
	}
	// The catalog-wide run still yields a sane Table 5 signal.
	a := AnalyzeProbes(w, run, false)
	if a.SPFMTAs == 0 || a.SPFMTAs > a.MTAs {
		t.Errorf("SPF MTAs %d of %d", a.SPFMTAs, a.MTAs)
	}
}
