package experiment

import (
	"fmt"
	"strings"
)

// Consistency is the §6.2 cross-experiment comparison: how domain
// validation status differs between the NotifyEmail experiment
// (legitimate mail delivered) and the NotifyMX experiment (probes,
// nine months later, from a blacklisted client). The paper found 58%
// of common domains inconsistent, 95% of inconsistencies being
// "validated for mail but not for probes", and only 65% of
// NotifyEmail validators re-observed by NotifyMX.
type Consistency struct {
	// CommonDomains is the number of domains evaluated by both runs.
	CommonDomains int
	// BothValidating / NeitherValidating are the consistent cases.
	BothValidating    int
	NeitherValidating int
	// EmailOnly counts domains validating for NotifyEmail but not
	// NotifyMX (the dominant inconsistency).
	EmailOnly int
	// ProbeOnly counts the reverse.
	ProbeOnly int
}

// Inconsistent is the total number of disagreeing domains.
func (c Consistency) Inconsistent() int { return c.EmailOnly + c.ProbeOnly }

// InconsistentFraction is the share of common domains disagreeing.
func (c Consistency) InconsistentFraction() float64 {
	if c.CommonDomains == 0 {
		return 0
	}
	return float64(c.Inconsistent()) / float64(c.CommonDomains)
}

// EmailOnlyFraction is the share of inconsistencies where the domain
// validated for mail but not for probes (paper: 95%).
func (c Consistency) EmailOnlyFraction() float64 {
	if c.Inconsistent() == 0 {
		return 0
	}
	return float64(c.EmailOnly) / float64(c.Inconsistent())
}

// ReobservedFraction is the share of NotifyEmail validators also seen
// validating in NotifyMX (paper: 65%).
func (c Consistency) ReobservedFraction() float64 {
	emailValidators := c.BothValidating + c.EmailOnly
	if emailValidators == 0 {
		return 0
	}
	return float64(c.BothValidating) / float64(emailValidators)
}

// Compare derives the §6.2 consistency analysis. The NotifyEmail
// analysis supplies per-domain validation; the probe analysis supplies
// the validating-MTA set, which is projected onto domains through the
// population (both experiments ran over the same domain population).
func Compare(neWorld *World, ne *NotifyEmailAnalysis, probes *ProbeAnalysis) Consistency {
	var c Consistency
	for _, d := range neWorld.Population.Domains {
		emailValidated := ne.Validation[d.ID].SPF
		probeValidated := false
		for _, m := range d.MTAs {
			if probes.ValidatingMTASet[m.ID] {
				probeValidated = true
				break
			}
		}
		c.CommonDomains++
		switch {
		case emailValidated && probeValidated:
			c.BothValidating++
		case !emailValidated && !probeValidated:
			c.NeitherValidating++
		case emailValidated:
			c.EmailOnly++
		default:
			c.ProbeOnly++
		}
	}
	return c
}

// RenderConsistency prints the §6.2 comparison.
func RenderConsistency(c Consistency) string {
	var sb strings.Builder
	sb.WriteString("Section 6.2: NotifyEmail vs NotifyMX consistency\n")
	fmt.Fprintf(&sb, "  common domains:            %d\n", c.CommonDomains)
	fmt.Fprintf(&sb, "  consistent:                %d validating + %d silent\n",
		c.BothValidating, c.NeitherValidating)
	fmt.Fprintf(&sb, "  inconsistent:              %d (%.0f%% of common)\n",
		c.Inconsistent(), 100*c.InconsistentFraction())
	fmt.Fprintf(&sb, "  mail-only validators:      %d (%.0f%% of inconsistencies; paper 95%%)\n",
		c.EmailOnly, 100*c.EmailOnlyFraction())
	fmt.Fprintf(&sb, "  probe-only validators:     %d\n", c.ProbeOnly)
	fmt.Fprintf(&sb, "  NotifyEmail validators re-observed by probes: %.0f%% (paper 65%%)\n",
		100*c.ReobservedFraction())
	return sb.String()
}
