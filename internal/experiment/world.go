// Package experiment implements the study's three experiment drivers —
// NotifyEmail (legitimate DKIM-signed deliveries), NotifyMX and
// TwoWeekMX (39-policy probes that disconnect before DATA content) —
// together with the analyses that regenerate every table and figure of
// the paper's evaluation from the authoritative server's query log.
package experiment

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"net/netip"
	"time"

	"sendervalid/internal/dataset"
	"sendervalid/internal/dkim"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/mtasim"
	"sendervalid/internal/netsim"
	"sendervalid/internal/policy"
	"sendervalid/internal/telemetry"
	"sendervalid/internal/trace"
)

// Default zone suffixes (the paper used spf-test.dns-lab.org and
// dsav-mail.dns-lab.org; this reproduction uses .example names).
const (
	DefaultTestSuffix   = "spf-test.dns-lab.example."
	DefaultNotifySuffix = "dsav-mail.dns-lab.example."
	DefaultContact      = "research-contact@dns-lab.example"
)

// Addresses of the experiment's own infrastructure on the fabric.
var (
	// SenderAddr4/6 are the legitimate sending MTA's addresses — the
	// ones the NotifyEmail SPF policies authorize.
	SenderAddr4 = netip.MustParseAddr("203.0.113.10")
	SenderAddr6 = netip.MustParseAddr("2001:db8:1::10")
	// ProbeAddr4/6 are the probing client's addresses — the ones that
	// end up on blacklists.
	ProbeAddr4 = netip.MustParseAddr("203.0.113.66")
	ProbeAddr6 = netip.MustParseAddr("2001:db8:1::66")
)

// WorldConfig parameterizes a simulated world.
type WorldConfig struct {
	// Seed drives profile sampling (combined with each MTA's own
	// ProfileSeed from the dataset).
	Seed int64
	// Rates is the behaviour-trait distribution for TierGeneral MTAs.
	Rates mtasim.Rates
	// TimeScale multiplies protocol shaping delays (1.0 = paper
	// timing; tests use ~0.01 or less).
	TimeScale float64
	// EnableIPv6DNS binds the authoritative server's [::1] endpoint so
	// the IPv6 test policy is exercisable.
	EnableIPv6DNS bool
	// SPFTimeout and DNSTimeout bound the MTAs' validation work.
	SPFTimeout time.Duration
	DNSTimeout time.Duration
	// PostDataDelayMax is the maximum extra delay a post-data
	// validator waits after accepting a message (Figure 2's positive
	// tail); per-MTA values are sampled uniformly from (0, max].
	PostDataDelayMax time.Duration
	// ProfileDrift is the probability that an MTA's behaviour profile
	// is resampled for this world instead of keeping its stable
	// per-MTA identity. An MTA's profile is otherwise a deterministic
	// function of the dataset, so rebuilding a world over the same
	// population reproduces the same fleet — the paper compared the
	// same MTAs across experiments months apart, observing a small
	// amount of behavioural change (§6.2); ~0.05 models that drift.
	ProfileDrift float64
	// FleetMetrics, when non-nil, aggregates telemetry across the
	// whole MTA fleet (see World.RegisterMetrics).
	FleetMetrics *mtasim.Metrics
	// Tracer, when non-nil, gives the world's authoritative DNS server
	// a root span per served query (attributed by the handler).
	Tracer *trace.Tracer
}

// World is a running simulated environment: the authoritative DNS
// server (both zones), the network fabric, and a fleet of simulated
// MTAs built from a dataset population.
type World struct {
	Population *dataset.Population
	Fabric     *netsim.Fabric
	DNS        *dnsserver.Server
	Log        *dnsserver.QueryLog
	DNSAddr    string
	DNSAddr6   string
	// MTAs indexes the fleet by dataset MTA ID.
	MTAs map[string]*mtasim.MTA
	// Signer is the NotifyEmail DKIM signer (Ed25519 for speed; the
	// paper's deployment used RSA, which the dkim package equally
	// supports).
	Signer *dkim.Signer

	cfg WorldConfig
}

// BuildWorld constructs and starts a world for the population.
func BuildWorld(pop *dataset.Population, cfg WorldConfig) (*World, error) {
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 0.001
	}
	if cfg.SPFTimeout == 0 {
		cfg.SPFTimeout = 10 * time.Second
	}
	if cfg.DNSTimeout == 0 {
		cfg.DNSTimeout = 3 * time.Second
	}
	if cfg.PostDataDelayMax == 0 {
		cfg.PostDataDelayMax = time.Duration(float64(25*time.Second) * cfg.TimeScale)
	}

	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("experiment: keygen: %w", err)
	}
	keyTXT, err := dkim.FormatKeyRecord(pub)
	if err != nil {
		return nil, err
	}

	env := &policy.Env{Suffix: DefaultTestSuffix, TimeScale: cfg.TimeScale}
	notifyCfg := &policy.NotifyEmailConfig{
		Suffix:        DefaultNotifySuffix,
		SenderV4:      SenderAddr4,
		SenderV6:      SenderAddr6,
		DKIMSelector:  "exp",
		DKIMKeyRecord: keyTXT,
		Contact:       DefaultContact,
		TimeScale:     cfg.TimeScale,
	}
	log := &dnsserver.QueryLog{}
	srv := &dnsserver.Server{
		Zones: []*dnsserver.Zone{
			{
				Suffix:     DefaultTestSuffix,
				Contact:    dnsserver.FormatContact(DefaultContact),
				Responders: policy.RespondersWithDMARC(env, DefaultContact),
			},
			{
				Suffix:     DefaultNotifySuffix,
				Contact:    dnsserver.FormatContact(DefaultContact),
				LabelDepth: 1,
				Default:    notifyCfg.Responder(),
			},
			// The recipient-domain MX/A records, served (unlogged) so
			// the sending MTA performs real mail-server selection.
			recipientZone(pop),
		},
		Log:    log,
		Tracer: cfg.Tracer,
	}
	if cfg.EnableIPv6DNS {
		srv.Addr6 = "[::1]:0"
	}
	addr, err := srv.Start()
	if err != nil && cfg.EnableIPv6DNS {
		// No IPv6 loopback on this host: fall back to IPv4-only DNS
		// (the IPv6 test policy then reports zero retrievals).
		srv.Addr6 = ""
		addr, err = srv.Start()
	}
	if err != nil {
		return nil, err
	}

	w := &World{
		Population: pop,
		Fabric:     netsim.NewFabric(),
		DNS:        srv,
		Log:        log,
		DNSAddr:    addr.String(),
		MTAs:       make(map[string]*mtasim.MTA, len(pop.MTAs)),
		Signer:     &dkim.Signer{Selector: "exp", Key: priv},
		cfg:        cfg,
	}
	if a6 := srv.Addr6Bound(); a6 != nil {
		w.DNSAddr6 = a6.String()
	}

	providerFlags := providerFlagsByMTA(pop)
	for _, info := range pop.MTAs {
		prof := w.sampleProfile(info, providerFlags[info.ID])
		mta := mtasim.New(mtasim.Config{
			ID:                 info.ID,
			Hostname:           info.Hostname,
			Addr4:              info.Addr4,
			Addr6:              info.Addr6,
			Profile:            prof,
			Fabric:             w.Fabric,
			DNSAddr:            w.DNSAddr,
			DNSAddr6:           w.DNSAddr6,
			SPFTimeout:         cfg.SPFTimeout,
			DNSTimeout:         cfg.DNSTimeout,
			PostDataDelay:      w.postDataDelay(info.ProfileSeed),
			BlacklistedSources: []netip.Addr{ProbeAddr4, ProbeAddr6},
			Metrics:            cfg.FleetMetrics,
		})
		if err := mta.Start(); err != nil {
			w.Close()
			return nil, err
		}
		w.MTAs[info.ID] = mta
	}
	return w, nil
}

// RegisterMetrics publishes the world's serving-side telemetry — the
// authoritative DNS server's families and, when WorldConfig.
// FleetMetrics was set, the MTA fleet totals — under the given
// constant labels. Sequential worlds in one process (cmd/experiment's
// three phases) share a registry by labeling each registration with a
// distinct experiment= label.
func (w *World) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	w.DNS.RegisterMetrics(reg, labels...)
	if w.cfg.FleetMetrics != nil {
		w.cfg.FleetMetrics.RegisterMetrics(reg, labels...)
	}
}

// providerFlagsByMTA maps MTA IDs to the pinned Table 6 validation
// flags of the provider domain they serve, if any.
func providerFlagsByMTA(pop *dataset.Population) map[string]*dataset.Provider {
	out := make(map[string]*dataset.Provider)
	for _, d := range pop.Domains {
		if d.Provider == nil {
			continue
		}
		for _, m := range d.MTAs {
			out[m.ID] = d.Provider
		}
	}
	return out
}

// sampleProfile draws the MTA's behaviour from tier-adjusted rates.
// The profile is a stable function of the MTA's identity; WorldConfig
// fields only matter through Rates, tier, and the drift probability.
func (w *World) sampleProfile(info *dataset.MTAInfo, provider *dataset.Provider) mtasim.Profile {
	seed := info.ProfileSeed
	if w.cfg.ProfileDrift > 0 {
		driftRng := mrand.New(mrand.NewSource(info.ProfileSeed ^ w.cfg.Seed ^ 0x9e3779b9))
		if driftRng.Float64() < w.cfg.ProfileDrift {
			seed = info.ProfileSeed ^ w.cfg.Seed
		}
	}
	rng := mrand.New(mrand.NewSource(seed))
	rates := TierRates(w.cfg.Rates, info.Tier)
	prof := rates.Sample(rng)
	if provider != nil {
		// Table 6 providers have known validation status; they run
		// compliant, real-time validators and accept any recipient.
		prof.ValidatesSPF = provider.SPF
		prof.ValidatesDKIM = provider.DKIM
		prof.ValidatesDMARC = provider.DMARC
		prof.EnforceDMARC = provider.DMARC
		prof.Phase = mtasim.AtData
		prof.PartialSPF = false
		prof.RejectProbe = false
		prof.AcceptAnyUser = true
		prof.WhitelistPostmaster = false
		prof.SPFOptions = spfCompliant(prof.SPFOptions)
	}
	// The NotifyEmail recipients are legitimate mailboxes; "operator"
	// stands in for them in the simulation.
	prof.ValidUsers = append(prof.ValidUsers, "operator")
	return prof
}

// postDataDelay derives a deterministic per-MTA post-data validation
// delay in (0, PostDataDelayMax].
func (w *World) postDataDelay(seed int64) time.Duration {
	rng := mrand.New(mrand.NewSource(seed*31 + 7))
	return time.Duration(1 + rng.Int63n(int64(w.cfg.PostDataDelayMax)))
}

// Close stops every MTA and the DNS server.
func (w *World) Close() {
	for _, m := range w.MTAs {
		m.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = w.DNS.Shutdown(ctx)
}

// Quiesce waits for all asynchronous (post-data) validations.
func (w *World) Quiesce() {
	for _, m := range w.MTAs {
		m.Wait()
	}
}

// TierRates adjusts the base rates for an MTA tier: Alexa-ranked
// domains validate at the higher rates of Table 7.
func TierRates(base mtasim.Rates, tier dataset.Tier) mtasim.Rates {
	r := base
	switch tier {
	case dataset.TierTop1M:
		// Table 7: SPF 88%, DKIM 84%, DMARC 67% among Top-1M members.
		r.ComboAll = 640
		r.ComboSPFDKIM = 180
		r.ComboNone = 90
		r.ComboSPFOnly = 50
		r.ComboDKIMOnly = 20
		r.ComboDMARCOnly = 10
		r.ComboSPFDMARC = 10
		r.ComboDKIMDMARC = 0
	case dataset.TierTop1K:
		// Table 7: SPF 93%, DKIM 90%, DMARC 79% among Top-1K members.
		r.ComboAll = 780
		r.ComboSPFDKIM = 120
		r.ComboNone = 40
		r.ComboSPFOnly = 30
		r.ComboDKIMOnly = 20
		r.ComboDMARCOnly = 5
		r.ComboSPFDMARC = 5
		r.ComboDKIMDMARC = 0
	}
	return r
}

// NotifyRates returns the trait rates for the NotifyEmail/NotifyMX
// population. The NotifyEmail domains are operator contact addresses
// at ordinary organizations: recipients mostly exist, postmaster
// whitelisting is uncommon, and by the June 2021 NotifyMX run the
// probing client was widely blacklisted (§6.2).
func NotifyRates() mtasim.Rates {
	r := mtasim.PaperRates()
	r.AcceptAnyUser = 0.92
	r.WhitelistPostmaster = 0.30
	r.RejectPostmaster = 0.02
	return r
}

// TwoWeekRates returns the trait rates for the TwoWeekMX population:
// provider-hosted domains where guessed usernames rarely exist and
// postmaster is commonly exempted from sender validation (§6.3).
func TwoWeekRates() mtasim.Rates {
	r := mtasim.PaperRates()
	r.AcceptAnyUser = 0.08
	r.WhitelistPostmaster = 0.80
	r.RejectPostmaster = 0.064
	return r
}
