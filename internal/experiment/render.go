package experiment

import (
	"fmt"
	"sort"
	"strings"

	"sendervalid/internal/dataset"
)

// pct renders a fraction of a total as a percentage string.
func pct(n, total int) string {
	if total == 0 {
		return "–"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(n)/float64(total))
}

func pct1(n, total int) string {
	if total == 0 {
		return "–"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

func mark(b bool) string {
	if b {
		return "Y"
	}
	return "x"
}

// RenderTable1 prints the top-10 TLD shares of a population (Table 1).
func RenderTable1(pops ...*dataset.Population) string {
	var sb strings.Builder
	sb.WriteString("Table 1: most prevalent TLDs per dataset\n")
	for _, p := range pops {
		fmt.Fprintf(&sb, "-- %s --\n", p.Name)
		shares := p.TLDShares()
		if len(shares) > 10 {
			shares = shares[:10]
		}
		for _, s := range shares {
			fmt.Fprintf(&sb, "  %-8s %5.1f%%\n", s.TLD, 100*s.Weight)
		}
		total := map[string]bool{}
		for _, d := range p.Domains {
			total[d.TLD] = true
		}
		fmt.Fprintf(&sb, "  total TLDs: %d\n", len(total))
	}
	return sb.String()
}

// RenderTable2 prints the dataset size summary (Table 2).
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: data sets used for experimentation\n")
	fmt.Fprintf(&sb, "  %-12s %10s %10s %10s\n", "data set", "domains", "MTAs v4", "MTAs v6")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-12s %10d %10d %10d\n", r.Name, r.Domains, r.MTAsV4, r.MTAsV6)
	}
	return sb.String()
}

// Table2Row summarizes one dataset for Table 2.
type Table2Row struct {
	Name    string
	Domains int
	MTAsV4  int
	MTAsV6  int
}

// Table2RowFor derives the row from a population.
func Table2RowFor(p *dataset.Population) Table2Row {
	v4, v6 := p.CountV4V6()
	return Table2Row{Name: p.Name, Domains: len(p.Domains), MTAsV4: v4, MTAsV6: v6}
}

// RenderTable3 prints the top-10 AS shares (Table 3).
func RenderTable3(pops ...*dataset.Population) string {
	var sb strings.Builder
	sb.WriteString("Table 3: most prevalent ASes by domain share\n")
	for _, p := range pops {
		fmt.Fprintf(&sb, "-- %s --\n", p.Name)
		shares := p.ASShares()
		if len(shares) > 10 {
			shares = shares[:10]
		}
		for _, s := range shares {
			fmt.Fprintf(&sb, "  AS%-6d %-16s %5.1f%%\n", s.ASN, s.Name, 100*s.DomainShare)
		}
		fmt.Fprintf(&sb, "  total ASes: %d\n", p.TotalASes)
	}
	return sb.String()
}

// comboOrder lists Table 4 rows in the paper's order.
var comboOrder = []struct {
	key   string
	label string
}{
	{"YYY", "SPF+DKIM+DMARC"},
	{"YYn", "SPF+DKIM"},
	{"nnn", "none"},
	{"Ynn", "SPF only"},
	{"nYn", "DKIM only"},
	{"nnY", "DMARC only"},
	{"YnY", "SPF+DMARC"},
	{"nYY", "DKIM+DMARC"},
}

// RenderTable4 prints the validation-combination breakdown (Table 4).
func RenderTable4(a *NotifyEmailAnalysis) string {
	var sb strings.Builder
	sb.WriteString("Table 4: SPF/DKIM/DMARC validation combinations (NotifyEmail domains)\n")
	fmt.Fprintf(&sb, "  %-16s %8s %7s\n", "combination", "domains", "share")
	for _, c := range comboOrder {
		n := a.Combos[c.key]
		fmt.Fprintf(&sb, "  %-16s %8d %7s\n", c.label, n, pct1(n, a.Domains))
	}
	return sb.String()
}

// RenderTable5 prints the SPF-validating summary (Table 5).
func RenderTable5(rows []*ProbeAnalysis, notifyEmail *NotifyEmailAnalysis) string {
	var sb strings.Builder
	sb.WriteString("Table 5: SPF-validating domains and MTAs\n")
	fmt.Fprintf(&sb, "  %-22s %9s %9s %14s %14s\n",
		"experiment", "domains", "MTAs", "SPF domains", "SPF MTAs")
	if notifyEmail != nil {
		fmt.Fprintf(&sb, "  %-22s %9d %9d %8d (%4s) %8d (%4s)\n",
			"NotifyEmail", notifyEmail.Domains, notifyEmail.ContactedMTAs,
			notifyEmail.SPFDomains, pct(notifyEmail.SPFDomains, notifyEmail.Domains),
			notifyEmail.SPFMTAs, pct(notifyEmail.SPFMTAs, notifyEmail.ContactedMTAs))
	}
	for _, a := range rows {
		fmt.Fprintf(&sb, "  %-22s %9d %9d %8d (%4s) %8d (%4s)\n",
			a.Name, a.Domains, a.MTAs,
			a.SPFDomains, pct(a.SPFDomains, a.Domains),
			a.SPFMTAs, pct(a.SPFMTAs, a.MTAs))
		for _, dec := range a.Deciles {
			fmt.Fprintf(&sb, "  %-22s %9d %9d %8d (%4s) %8d (%4s)\n",
				fmt.Sprintf("%s decile %d", a.Name, dec.Decile),
				dec.Domains, dec.MTAs,
				dec.SPFDomains, pct(dec.SPFDomains, dec.Domains),
				dec.SPFMTAs, pct(dec.SPFMTAs, dec.MTAs))
		}
	}
	return sb.String()
}

// RenderTable6 prints the popular-provider breakdown (Table 6).
func RenderTable6(a *NotifyEmailAnalysis) string {
	var sb strings.Builder
	sb.WriteString("Table 6: validation by popular mail providers (observed / expected)\n")
	fmt.Fprintf(&sb, "  %-16s %5s %5s %6s\n", "domain", "SPF", "DKIM", "DMARC")
	for _, row := range a.Providers {
		fmt.Fprintf(&sb, "  %-16s %3s/%s %3s/%s %4s/%s\n",
			row.Domain,
			mark(row.SPF), mark(row.Expected.SPF),
			mark(row.DKIM), mark(row.Expected.DKIM),
			mark(row.DMARC), mark(row.Expected.DMARC))
	}
	return sb.String()
}

// RenderTable7 prints the Alexa breakdown (Table 7).
func RenderTable7(a *NotifyEmailAnalysis) string {
	al := a.Alexa
	var sb strings.Builder
	sb.WriteString("Table 7: validation by Alexa membership\n")
	fmt.Fprintf(&sb, "  %-18s %14s %14s %14s\n", "", "all", "top 1M", "top 1K")
	fmt.Fprintf(&sb, "  %-18s %14d %14d %14d\n", "domains", al.All, al.Top1M, al.Top1K)
	fmt.Fprintf(&sb, "  %-18s %8d (%4s) %8d (%4s) %8d (%4s)\n", "SPF-validating",
		al.SPFAll, pct(al.SPFAll, al.All),
		al.SPFTop1M, pct(al.SPFTop1M, al.Top1M),
		al.SPFTop1K, pct(al.SPFTop1K, al.Top1K))
	fmt.Fprintf(&sb, "  %-18s %8d (%4s) %8d (%4s) %8d (%4s)\n", "DKIM-validating",
		al.DKIMAll, pct(al.DKIMAll, al.All),
		al.DKIMTop1M, pct(al.DKIMTop1M, al.Top1M),
		al.DKIMTop1K, pct(al.DKIMTop1K, al.Top1K))
	fmt.Fprintf(&sb, "  %-18s %8d (%4s) %8d (%4s) %8d (%4s)\n", "DMARC-validating",
		al.DMARCAll, pct(al.DMARCAll, al.All),
		al.DMARCTop1M, pct(al.DMARCTop1M, al.Top1M),
		al.DMARCTop1K, pct(al.DMARCTop1K, al.Top1K))
	return sb.String()
}

// RenderFigure2 prints the timing histogram (Figure 2) as text bars.
func RenderFigure2(a *NotifyEmailAnalysis) string {
	b := Bucketize(a.TimingSamples)
	var sb strings.Builder
	sb.WriteString("Figure 2: distribution of tSPF − tEmail (paper-equivalent seconds)\n")
	rows := []struct {
		label string
		n     int
	}{
		{"<= -30", b.LE30Neg},
		{"(-30,-15]", b.Neg15},
		{"(-15,0]", b.Neg0},
		{"(0,15]", b.Pos15},
		{"(15,30]", b.Pos30},
		{"> 30", b.GE30},
	}
	for _, r := range rows {
		bar := strings.Repeat("#", barLen(r.n, b.Total, 50))
		fmt.Fprintf(&sb, "  %-10s %6s %s\n", r.label, pct1(r.n, b.Total), bar)
	}
	fmt.Fprintf(&sb, "  negative (validated before delivery): %s of %d domains; %d sub-granularity samples filtered\n",
		pct(b.LE30Neg+b.Neg15+b.Neg0, b.Total), b.Total, a.TimingFiltered)
	return sb.String()
}

func barLen(n, total, width int) int {
	if total == 0 {
		return 0
	}
	return n * width / total
}

// RenderFigure5 prints the lookup-limit CDF (Figure 5).
func RenderFigure5(r LookupLimitResult, delaySeconds float64) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: CDF of DNS queries (and elapsed-time lower bound) on the limits policy\n")
	fmt.Fprintf(&sb, "  MTAs tested: %d\n", r.Tested)
	for _, p := range r.CDF() {
		fmt.Fprintf(&sb, "  %3.0f queries (>= %5.1fs) : %5.1f%% %s\n",
			p.X, p.X*delaySeconds, 100*p.Fraction,
			strings.Repeat("#", int(p.Fraction*40)))
	}
	fmt.Fprintf(&sb, "  halted before 10 queries: %s; ran all %d: %s\n",
		pct(r.HaltedBeforeTen, r.Tested), r.MaxQueries, pct(r.RanAll, r.Tested))
	return sb.String()
}

// RenderBehaviors prints the §7 behaviour summary.
func RenderBehaviors(sp SerialParallelResult, b *BehaviorResults) string {
	var sb strings.Builder
	sb.WriteString("Section 7: SPF validation behaviours\n")
	fmt.Fprintf(&sb, "  §7.1 serial DNS lookups:        %d/%d (%s)\n",
		sp.Serial, sp.Tested, pct(sp.Serial, sp.Tested))
	lines := []struct {
		label string
		s     SimpleShare
	}{
		{"§7.3 HELO policy checked", b.HELOChecked},
		{"§7.3 ...continued to MAIL", b.ContinuedToMail},
		{"§7.3 tolerated main-policy error", b.SyntaxMainTolerant},
		{"§7.3 tolerated child-policy error", b.SyntaxChildTolerant},
		{"§7.3 exceeded 2 void lookups", b.VoidExceeded},
		{"§7.3 looked up all five voids", b.VoidAllFive},
		{"§7.3 forbidden MX->A fallback", b.MXFallback},
		{"§7.3 multiple records: none", b.MultipleNone},
		{"§7.3 multiple records: one", b.MultipleOne},
		{"§7.3 multiple records: both", b.MultipleBoth},
		{"§7.3 TCP retry after truncation", b.TCPRetried},
		{"§7.3 retrieved IPv6-only policy", b.IPv6Retrieved},
		{"§7.3 MX limit respected (<=10)", b.MXLimitCompliant},
		{"§7.3 queried all 20 MX hosts", b.MXAllTwenty},
	}
	for _, l := range lines {
		fmt.Fprintf(&sb, "  %-34s %5d/%-5d (%s)\n",
			l.label+":", l.s.Observed, l.s.Tested, pct(l.s.Observed, l.s.Tested))
	}
	return sb.String()
}

// SortedComboKeys returns the Table 4 combination keys in paper order,
// for callers iterating the Combos map deterministically.
func SortedComboKeys(combos map[string]int) []string {
	keys := make([]string, 0, len(combos))
	for _, c := range comboOrder {
		if _, ok := combos[c.key]; ok {
			keys = append(keys, c.key)
		}
	}
	var extra []string
	for k := range combos {
		known := false
		for _, c := range comboOrder {
			if c.key == k {
				known = true
			}
		}
		if !known {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	return append(keys, extra...)
}
