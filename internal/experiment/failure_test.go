package experiment

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"sendervalid/internal/dataset"
	"sendervalid/internal/mtasim"
	"sendervalid/internal/netsim"
	"sendervalid/internal/probe"
)

// TestProbeSurvivesDeadDNS verifies the pipeline tolerates MTAs whose
// resolvers point at a dead upstream: probes complete (the MTA's SPF
// check fails with temperror internally) and the analysis simply
// observes no validation.
func TestProbeSurvivesDeadDNS(t *testing.T) {
	fabric := netsim.NewFabric()
	mta := mtasim.New(mtasim.Config{
		ID: "deaddns", Hostname: "mx.deaddns.example",
		Addr4:   netip.MustParseAddr("10.9.0.1"),
		Profile: mtasim.Profile{ValidatesSPF: true, Phase: mtasim.AtMail, AcceptAnyUser: true},
		Fabric:  fabric,
		// A loopback port with nothing listening.
		DNSAddr:    "127.0.0.1:1",
		DNSTimeout: 200 * time.Millisecond,
		SPFTimeout: 500 * time.Millisecond,
	})
	if err := mta.Start(); err != nil {
		t.Fatal(err)
	}
	defer mta.Close()

	client := &probe.Client{
		Dialer: fabric, Suffix: DefaultTestSuffix,
		HeloDomain: "probe.example", RecipientDomain: "deaddns.example",
		Timeout: 5 * time.Second,
	}
	res := client.Probe(context.Background(), netip.MustParseAddr("10.9.0.1"), "deaddns", "t12")
	if res.Stage != probe.StageDone {
		t.Fatalf("probe against dead-DNS MTA: %+v", res)
	}
	if mta.Stats().SPFChecks != 1 {
		t.Errorf("SPF check not attempted: %+v", mta.Stats())
	}
}

// TestProbeRunToleratesUnreachableMTAs marks part of the fleet
// unreachable and verifies the run completes with the rest analyzed.
func TestProbeRunToleratesUnreachableMTAs(t *testing.T) {
	w := buildTestWorld(t, smallNotifySpec(80, 31), NotifyRates())
	down := 0
	for _, info := range w.Population.MTAs {
		if down >= len(w.Population.MTAs)/3 {
			break
		}
		w.Fabric.SetUnreachable(info.Addr4, true)
		down++
	}
	run := RunProbes(context.Background(), w, []string{"t12"}, 16)
	a := AnalyzeProbes(w, run, false)
	if a.ProbesTotal != len(w.Population.MTAs) {
		t.Errorf("probes %d for %d MTAs", a.ProbesTotal, len(w.Population.MTAs))
	}
	failed := 0
	for _, results := range run.Results {
		for _, r := range results {
			if r.Stage == probe.StageConnect && r.Err != nil {
				failed++
			}
		}
	}
	if failed < down {
		t.Errorf("only %d connect failures for %d downed MTAs", failed, down)
	}
	// Downed validators cannot be observed.
	if a.SPFMTAs > len(w.Population.MTAs)-down {
		t.Errorf("more validators (%d) than reachable MTAs (%d)",
			a.SPFMTAs, len(w.Population.MTAs)-down)
	}
}

// TestRunCancellation verifies both drivers stop promptly when the
// context is cancelled.
func TestRunCancellation(t *testing.T) {
	w := buildTestWorld(t, smallNotifySpec(120, 37), NotifyRates())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run := RunProbes(ctx, w, []string{"t12"}, 8)
	if len(run.Results) >= len(w.Population.MTAs) {
		t.Errorf("cancelled probe run processed all %d MTAs", len(run.Results))
	}
	ne := RunNotifyEmail(ctx, w, 8)
	if len(ne.Deliveries) >= len(w.Population.Domains) {
		t.Errorf("cancelled delivery run processed all %d domains", len(ne.Deliveries))
	}
}

// TestWorldRebuildAfterClose verifies worlds can be built and torn
// down repeatedly over the same population (the NotifyEmail →
// NotifyMX sequencing in cmd/experiment).
func TestWorldRebuildAfterClose(t *testing.T) {
	pop := dataset.Generate(smallNotifySpec(40, 41))
	for i := 0; i < 3; i++ {
		w, err := BuildWorld(pop, WorldConfig{
			Seed: int64(41 + i), Rates: NotifyRates(), TimeScale: 0.0005,
		})
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
		run := RunProbes(context.Background(), w, []string{"t12"}, 8)
		if len(run.Results) != len(pop.MTAs) {
			t.Errorf("build %d: %d results", i, len(run.Results))
		}
		w.Close()
	}
}

// TestTierRates verifies the Alexa tier adjustments raise validation
// combo weight without touching behaviour knobs.
func TestTierRates(t *testing.T) {
	base := NotifyRates()
	for _, tier := range []dataset.Tier{dataset.TierTop1M, dataset.TierTop1K} {
		r := TierRates(base, tier)
		baseAll := base.ComboAll / (base.ComboAll + base.ComboSPFDKIM + base.ComboNone +
			base.ComboSPFOnly + base.ComboDKIMOnly + base.ComboDMARCOnly + base.ComboSPFDMARC)
		tierAll := r.ComboAll / (r.ComboAll + r.ComboSPFDKIM + r.ComboNone +
			r.ComboSPFOnly + r.ComboDKIMOnly + r.ComboDMARCOnly + r.ComboSPFDMARC)
		if tierAll <= baseAll {
			t.Errorf("tier %v does not raise all-three share: %.3f vs %.3f", tier, tierAll, baseAll)
		}
		if r.RejectProbe != base.RejectProbe || r.Parallel != base.Parallel {
			t.Errorf("tier %v altered behaviour knobs", tier)
		}
	}
	if r := TierRates(base, dataset.TierGeneral); r != base {
		t.Error("general tier modified rates")
	}
}

// TestPaperScaleWorld exercises a larger slice of the fleet unless -short.
func TestPaperScaleWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("larger-scale world")
	}
	w := buildTestWorld(t, smallNotifySpec(1200, 43), NotifyRates())
	run := RunProbes(context.Background(), w, []string{"t01", "t12"}, 64)
	a := AnalyzeProbes(w, run, false)
	rate := float64(a.SPFDomains) / float64(a.Domains)
	if rate < 0.40 || rate > 0.62 {
		t.Errorf("NotifyMX rate at scale: %.2f", rate)
	}
	sp := AnalyzeSerialParallel(w)
	if sp.Tested < 200 {
		t.Fatalf("only %d MTAs classifiable", sp.Tested)
	}
	serial := float64(sp.Serial) / float64(sp.Tested)
	if serial < 0.93 || serial > 1.0 {
		t.Errorf("serial fraction at scale: %.3f (paper 0.97)", serial)
	}
}
