package experiment

import (
	"sort"
	"strings"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/policy"
)

// mtaQueries groups log entries per MTA for one test.
func mtaQueries(entries []dnsserver.LogEntry, testID string) map[string][]dnsserver.LogEntry {
	out := make(map[string][]dnsserver.LogEntry)
	for _, e := range entries {
		if e.TestID == testID && e.MTAID != "" {
			out[e.MTAID] = append(out[e.MTAID], e)
		}
	}
	return out
}

// hasRest reports whether any entry's leading rest label matches.
func hasRest(entries []dnsserver.LogEntry, label string, types ...dns.Type) bool {
	for _, e := range entries {
		if len(e.Rest) == 0 || e.Rest[0] != label {
			continue
		}
		if len(types) == 0 {
			return true
		}
		for _, t := range types {
			if e.Type == t {
				return true
			}
		}
	}
	return false
}

func countRestPrefix(entries []dnsserver.LogEntry, prefix string, types ...dns.Type) int {
	n := 0
	for _, e := range entries {
		if len(e.Rest) == 0 || !strings.HasPrefix(e.Rest[0], prefix) {
			continue
		}
		match := len(types) == 0
		for _, t := range types {
			if e.Type == t {
				match = true
			}
		}
		if match {
			n++
		}
	}
	return n
}

// SerialParallelResult is the §7.1 analysis.
type SerialParallelResult struct {
	Tested   int
	Serial   int
	Parallel int
}

// AnalyzeSerialParallel classifies each MTA's t01 evaluation: serial
// validators query the a-mechanism target only after the shaped L3
// include; parallel (prefetching) validators query it earlier.
func AnalyzeSerialParallel(w *World) SerialParallelResult {
	return AnalyzeSerialParallelEntries(w.Log.Entries())
}

// AnalyzeSerialParallelEntries is the offline (log-file) variant.
func AnalyzeSerialParallelEntries(log []dnsserver.LogEntry) SerialParallelResult {
	var out SerialParallelResult
	for _, entries := range mtaQueries(log, "t01") {
		var aTime, l3Time time.Time
		for _, e := range entries {
			if len(e.Rest) != 1 {
				continue
			}
			switch {
			case e.Rest[0] == "foo" && (e.Type == dns.TypeA || e.Type == dns.TypeAAAA):
				if aTime.IsZero() || e.Time.Before(aTime) {
					aTime = e.Time
				}
			case e.Rest[0] == "l3" && e.Type == dns.TypeTXT:
				if l3Time.IsZero() || e.Time.Before(l3Time) {
					l3Time = e.Time
				}
			}
		}
		// Only MTAs that progressed far enough to show both signals
		// are classifiable (the paper tested 1,432 such MTAs).
		if aTime.IsZero() || l3Time.IsZero() {
			continue
		}
		out.Tested++
		if aTime.After(l3Time) {
			out.Serial++
		} else {
			out.Parallel++
		}
	}
	return out
}

// LookupLimitResult is the §7.2 / Figure 5 analysis.
type LookupLimitResult struct {
	// Tested counts MTAs that fetched the t02 base policy.
	Tested int
	// QueriesPerMTA holds, per MTA, the number of DNS queries issued
	// after the base query (0–46).
	QueriesPerMTA []int
	// HaltedBeforeTen counts MTAs stopping at or under the 10-lookup
	// limit (the paper's "halted before 10 DNS queries").
	HaltedBeforeTen int
	// RanAll counts MTAs issuing all 46 follow-ups.
	RanAll int
	// MaxQueries is the tree size (46).
	MaxQueries int
}

// AnalyzeLookupLimits derives the Figure 5 distribution from the t02
// query log.
func AnalyzeLookupLimits(w *World) LookupLimitResult {
	return AnalyzeLookupLimitsEntries(w.Log.Entries())
}

// AnalyzeLookupLimitsEntries is the offline (log-file) variant.
func AnalyzeLookupLimitsEntries(log []dnsserver.LogEntry) LookupLimitResult {
	out := LookupLimitResult{MaxQueries: policy.LimitsTreeSize()}
	for _, entries := range mtaQueries(log, "t02") {
		base := false
		followUps := 0
		for _, e := range entries {
			if e.Type != dns.TypeTXT {
				continue
			}
			if len(e.Rest) == 0 {
				base = true
			} else {
				followUps++
			}
		}
		if !base {
			continue
		}
		out.Tested++
		out.QueriesPerMTA = append(out.QueriesPerMTA, followUps)
		if followUps <= 10 {
			out.HaltedBeforeTen++
		}
		if followUps >= out.MaxQueries {
			out.RanAll++
		}
	}
	sort.Ints(out.QueriesPerMTA)
	return out
}

// CDF returns (x, fraction≤x) pairs over the query counts — the
// Figure 5 curve. The elapsed-time axis is x × LimitsDelay.
func (r LookupLimitResult) CDF() []CDFPoint {
	if len(r.QueriesPerMTA) == 0 {
		return nil
	}
	var out []CDFPoint
	n := len(r.QueriesPerMTA)
	for i, q := range r.QueriesPerMTA {
		if i+1 < n && r.QueriesPerMTA[i+1] == q {
			continue
		}
		out = append(out, CDFPoint{X: float64(q), Fraction: float64(i+1) / float64(n)})
	}
	return out
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	X        float64
	Fraction float64
}

// SimpleShare is a tested/observed pair used by the §7.3 analyses.
type SimpleShare struct {
	Tested   int
	Observed int
}

// Fraction returns Observed/Tested (0 when untested).
func (s SimpleShare) Fraction() float64 {
	if s.Tested == 0 {
		return 0
	}
	return float64(s.Observed) / float64(s.Tested)
}

// BehaviorResults bundles the §7.3 analyses.
type BehaviorResults struct {
	// HELOChecked: MTAs that looked up the HELO-domain policy; all of
	// them also evaluated MAIL (ContinuedToMail).
	HELOChecked     SimpleShare
	ContinuedToMail SimpleShare

	// Syntax tolerance: lookups right of (t04) or after (t05) an error.
	SyntaxMainTolerant  SimpleShare
	SyntaxChildTolerant SimpleShare

	// Void lookups: exceeded the 2-void limit; AllFive looked up all 5.
	VoidExceeded SimpleShare
	VoidAllFive  SimpleShare

	// MXFallback: A/AAAA after an empty MX answer.
	MXFallback SimpleShare

	// Multiple records: permerror (followed none), one, or both.
	MultipleNone SimpleShare
	MultipleOne  SimpleShare
	MultipleBoth SimpleShare

	// TCP: of resolvers that received a truncated UDP answer, how many
	// retried over TCP.
	TCPRetried SimpleShare

	// IPv6: of MTAs that fetched the t10 base policy, how many
	// retrieved the v6-only follow-up.
	IPv6Retrieved SimpleShare

	// MXLimit: stopped at ≤10 address lookups; AllTwenty did all 20.
	MXLimitCompliant SimpleShare
	MXAllTwenty      SimpleShare
}

// AnalyzeBehaviors computes the §7.3 results from the query log.
func AnalyzeBehaviors(w *World) *BehaviorResults {
	return AnalyzeBehaviorsEntries(w.Log.Entries())
}

// AnalyzeBehaviorsEntries is the offline (log-file) variant.
func AnalyzeBehaviorsEntries(log []dnsserver.LogEntry) *BehaviorResults {
	out := &BehaviorResults{}

	// t03: HELO check.
	for _, entries := range mtaQueries(log, "t03") {
		mailSeen := false
		for _, e := range entries {
			if len(e.Rest) == 0 && e.Type == dns.TypeTXT {
				mailSeen = true
			}
		}
		heloSeen := hasRest(entries, "helo", dns.TypeTXT)
		if !mailSeen && !heloSeen {
			continue
		}
		out.HELOChecked.Tested++
		if heloSeen {
			out.HELOChecked.Observed++
			out.ContinuedToMail.Tested++
			if mailSeen {
				out.ContinuedToMail.Observed++
			}
		}
	}

	// t04: syntax error in the main policy.
	for _, entries := range mtaQueries(log, "t04") {
		if !baseTXTSeen(entries) {
			continue
		}
		out.SyntaxMainTolerant.Tested++
		if hasRest(entries, "after", dns.TypeA, dns.TypeAAAA) {
			out.SyntaxMainTolerant.Observed++
		}
	}

	// t05: syntax error in a child policy.
	for _, entries := range mtaQueries(log, "t05") {
		if !baseTXTSeen(entries) {
			continue
		}
		out.SyntaxChildTolerant.Tested++
		if hasRest(entries, "cont", dns.TypeA, dns.TypeAAAA) {
			out.SyntaxChildTolerant.Observed++
		}
	}

	// t06: void lookups.
	for _, entries := range mtaQueries(log, "t06") {
		if !baseTXTSeen(entries) {
			continue
		}
		voids := countRestPrefix(entries, "v", dns.TypeA, dns.TypeAAAA)
		out.VoidExceeded.Tested++
		out.VoidAllFive.Tested++
		if voids > 2 {
			out.VoidExceeded.Observed++
		}
		if voids >= 5 {
			out.VoidAllFive.Observed++
		}
	}

	// t07: forbidden implicit-MX fallback.
	for _, entries := range mtaQueries(log, "t07") {
		if !baseTXTSeen(entries) {
			continue
		}
		out.MXFallback.Tested++
		if hasRest(entries, "nomx", dns.TypeA, dns.TypeAAAA) {
			out.MXFallback.Observed++
		}
	}

	// t08: multiple SPF records.
	for _, entries := range mtaQueries(log, "t08") {
		if !baseTXTSeen(entries) {
			continue
		}
		one := hasRest(entries, "one", dns.TypeA, dns.TypeAAAA)
		two := hasRest(entries, "two", dns.TypeA, dns.TypeAAAA)
		out.MultipleNone.Tested++
		out.MultipleOne.Tested++
		out.MultipleBoth.Tested++
		switch {
		case one && two:
			out.MultipleBoth.Observed++
		case one || two:
			out.MultipleOne.Observed++
		default:
			out.MultipleNone.Observed++
		}
	}

	// t09: TCP retry after truncation.
	for _, entries := range mtaQueries(log, "t09") {
		sawUDP, sawTCP := false, false
		for _, e := range entries {
			if e.Transport == "udp" {
				sawUDP = true
			}
			if e.Transport == "tcp" {
				sawTCP = true
			}
		}
		if !sawUDP && !sawTCP {
			continue
		}
		out.TCPRetried.Tested++
		if sawTCP {
			out.TCPRetried.Observed++
		}
	}

	// t10: IPv6-only follow-up retrieval.
	for _, entries := range mtaQueries(log, "t10") {
		if !baseTXTSeen(entries) {
			continue
		}
		out.IPv6Retrieved.Tested++
		for _, e := range entries {
			if len(e.Rest) == 1 && e.Rest[0] == "l1" && e.OverIPv6 {
				out.IPv6Retrieved.Observed++
				break
			}
		}
	}

	// t11: MX address-lookup limit.
	for _, entries := range mtaQueries(log, "t11") {
		if !baseTXTSeen(entries) {
			continue
		}
		lookups := 0
		for _, e := range entries {
			if len(e.Rest) == 1 && strings.HasPrefix(e.Rest[0], "mx") &&
				e.Rest[0] != "mxfarm" && (e.Type == dns.TypeA || e.Type == dns.TypeAAAA) {
				lookups++
			}
		}
		out.MXLimitCompliant.Tested++
		out.MXAllTwenty.Tested++
		if lookups <= 10 {
			out.MXLimitCompliant.Observed++
		}
		if lookups >= policy.MXLimitCount {
			out.MXAllTwenty.Observed++
		}
	}

	return out
}

func baseTXTSeen(entries []dnsserver.LogEntry) bool {
	for _, e := range entries {
		if len(e.Rest) == 0 && e.Type == dns.TypeTXT {
			return true
		}
	}
	return false
}
