package experiment

import (
	"context"
	"strings"
	"time"

	"sendervalid/internal/dataset"
	"sendervalid/internal/probe"
)

// CoreTests is the subset of the 39-policy catalog whose results the
// paper reports (§6–§7); experiment drivers default to it.
var CoreTests = []string{
	"t01", "t02", "t03", "t04", "t05", "t06",
	"t07", "t08", "t09", "t10", "t11", "t12",
}

// AllTests lists the full 39-policy catalog IDs.
func AllTests() []string {
	out := make([]string, 0, 39)
	for i := 1; i <= 39; i++ {
		out = append(out, testID(i))
	}
	return out
}

func testID(i int) string {
	return "t" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// ProbeRun is the raw outcome of a NotifyMX or TwoWeekMX experiment.
type ProbeRun struct {
	// Results collects every probe, keyed by MTA id.
	Results map[string][]*probe.Result
	// Tests is the test-ID list each MTA was probed with.
	Tests []string
	// Started and Finished bound the run.
	Started, Finished time.Time
}

// RunProbes executes the probe experiment against every MTA in the
// population: all test policies per MTA, MTA order shuffled (paper
// §5.2), bounded worker concurrency, and the probing client pinned to
// its (blacklisted) source addresses. It is a thin wrapper over a
// campaign with the historical defaults (no rate limit, no journal);
// NewProbeCampaign exposes the durable, rate-limited form.
func RunProbes(ctx context.Context, w *World, tests []string, workers int) *ProbeRun {
	run, _ := NewProbeCampaign(w, tests, ProbeCampaignOpts{Workers: workers}).Run(ctx)
	return run
}

// ProbeAnalysis is the Table 5 summary of a probe experiment.
type ProbeAnalysis struct {
	Name string

	Domains int
	MTAs    int
	// SPFMTAs and SPFDomains count SPF-validating MTAs/domains: at
	// least one query observed under the test zone.
	SPFMTAs    int
	SPFDomains int

	// Rejection observations (§6.2).
	SpamRejected      int
	BlacklistRejected int
	InvalidRecipient  int
	PostmasterUsed    int
	ProbesCompleted   int
	ProbesTotal       int

	// Deciles is the per-decile Table 5 breakdown (TwoWeekMX only;
	// nil otherwise). Decile 1 is the most-queried tenth.
	Deciles []DecileRow

	// ValidatingMTASet exposes the observed MTA ids for cross-
	// experiment comparisons (§6.2's NotifyEmail vs NotifyMX contrast).
	ValidatingMTASet map[string]bool
}

// DecileRow is one TwoWeekMX decile line of Table 5.
type DecileRow struct {
	Decile     int
	Domains    int
	MTAs       int
	SPFDomains int
	SPFMTAs    int
}

// AnalyzeProbes derives the Table 5 numbers from the query log.
func AnalyzeProbes(w *World, run *ProbeRun, withDeciles bool) *ProbeAnalysis {
	a := &ProbeAnalysis{
		Name:             w.Population.Name,
		Domains:          len(w.Population.Domains),
		MTAs:             len(w.Population.MTAs),
		ValidatingMTASet: make(map[string]bool),
	}

	// An MTA is SPF-validating when any query under the test zone is
	// attributed to it (§6 definition).
	for _, e := range w.Log.Entries() {
		if e.MTAID != "" && e.TestID != "" {
			a.ValidatingMTASet[e.MTAID] = true
		}
	}
	a.SPFMTAs = len(a.ValidatingMTASet)

	validatingDomain := func(d *dataset.Domain) bool {
		for _, m := range d.MTAs {
			if a.ValidatingMTASet[m.ID] {
				return true
			}
		}
		return false
	}
	for _, d := range w.Population.Domains {
		if validatingDomain(d) {
			a.SPFDomains++
		}
	}

	// Probe-outcome accounting.
	rejectedMTAs := make(map[string]*probe.Result)
	for id, results := range run.Results {
		for _, r := range results {
			a.ProbesTotal++
			if r.Stage == probe.StageDone {
				a.ProbesCompleted++
			}
			if r.Rejected() && rejectedMTAs[id] == nil {
				rejectedMTAs[id] = r
			}
			if strings.HasPrefix(r.Recipient, "postmaster@") {
				a.PostmasterUsed++
			}
		}
	}
	for _, r := range rejectedMTAs {
		switch {
		case r.MentionsBlacklist():
			a.BlacklistRejected++
		case r.MentionsSpam():
			a.SpamRejected++
		case r.Stage == probe.StageRcpt:
			a.InvalidRecipient++
		}
	}

	if withDeciles {
		for i, dec := range w.Population.Deciles() {
			row := DecileRow{Decile: i + 1, Domains: len(dec)}
			mtas := make(map[string]bool)
			for _, d := range dec {
				if validatingDomain(d) {
					row.SPFDomains++
				}
				for _, m := range d.MTAs {
					if !mtas[m.ID] {
						mtas[m.ID] = true
						row.MTAs++
						if a.ValidatingMTASet[m.ID] {
							row.SPFMTAs++
						}
					}
				}
			}
			a.Deciles = append(a.Deciles, row)
		}
	}
	return a
}
