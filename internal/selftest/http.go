package selftest

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strings"
	"time"
)

// Handler serves the self-test tool over HTTP: a form at "/", an
// HTML result at POST /assess, and a JSON API at POST /api/assess.
type Handler struct {
	Service *Service
	// Timeout bounds one assessment. Zero means 60 s.
	Timeout time.Duration
}

func (h *Handler) timeout() time.Duration {
	if h.Timeout > 0 {
		return h.Timeout
	}
	return 60 * time.Second
}

var pageTemplate = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>Sender-validation self-test</title></head>
<body>
<h1>Sender-validation self-test</h1>
<p>Enter a mailbox you operate. The tool delivers one legitimate,
DKIM-signed test message from an instrumented domain and reports which
of SPF, DKIM, and DMARC your mail infrastructure validated.</p>
<form method="POST" action="/assess">
  <input type="email" name="address" placeholder="you@example.com" required>
  <button type="submit">Assess</button>
</form>
{{if .}}
<h2>Result for {{.Address}}</h2>
<pre>{{.Report}}</pre>
{{end}}
</body></html>
`))

type pageData struct {
	Address string
	Report  string
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/" && r.Method == http.MethodGet:
		h.renderPage(w, nil)
	case r.URL.Path == "/assess" && r.Method == http.MethodPost:
		h.handleAssess(w, r, false)
	case r.URL.Path == "/api/assess" && r.Method == http.MethodPost:
		h.handleAssess(w, r, true)
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) renderPage(w http.ResponseWriter, data *pageData) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTemplate.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *Handler) handleAssess(w http.ResponseWriter, r *http.Request, asJSON bool) {
	address := strings.TrimSpace(r.FormValue("address"))
	if address == "" || !strings.Contains(address, "@") {
		http.Error(w, "a valid email address is required", http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.timeout())
	defer cancel()
	assessment, err := h.Service.Assess(ctx, address)
	if err != nil {
		http.Error(w, fmt.Sprintf("assessment failed: %v", err), http.StatusBadGateway)
		return
	}
	if asJSON {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(assessment)
		return
	}
	h.renderPage(w, &pageData{Address: address, Report: Render(assessment)})
}
