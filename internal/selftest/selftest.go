// Package selftest implements the methodology improvement the paper
// proposes in §8: a self-service assessment tool. A mail-server
// operator supplies a mailbox they control; the tool sends one
// legitimate, DKIM-signed test message from a unique instrumented
// From domain and then reads the receiving server's SPF, DKIM, and
// DMARC validation behaviour off the authoritative DNS query log —
// the same inference the study performs, but with the recipient's
// consent and a legitimate address, eliminating the postmaster and
// blacklist blind spots of the probe experiments.
package selftest

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/probe"
	"sendervalid/internal/smtp"
)

// Assessment is the outcome of one self-test session.
type Assessment struct {
	// SessionID is the unique identifier embedded in the From domain.
	SessionID string
	// Address is the mailbox assessed.
	Address string
	// FromDomain is the instrumented sender domain used.
	FromDomain string
	// Delivered reports whether the test message was accepted.
	Delivered bool
	// DeliveryError carries the SMTP failure when not delivered.
	DeliveryError string

	// SPF: the receiving infrastructure fetched the SPF policy.
	SPF bool
	// SPFComplete: it also resolved the policy's address mechanism
	// (false + SPF true = the paper's §6.1 "partial validator").
	SPFComplete bool
	// DKIM: the DKIM public key was fetched.
	DKIM bool
	// DMARC: the DMARC policy was fetched.
	DMARC bool

	// Queries is the number of attributed DNS queries observed.
	Queries int
	// CompletedAt stamps the assessment.
	CompletedAt time.Time
}

// Grade summarizes the assessment as a human-readable verdict.
func (a *Assessment) Grade() string {
	switch {
	case !a.Delivered:
		return "undeliverable"
	case a.SPF && a.DKIM && a.DMARC:
		return "full sender validation (SPF + DKIM + DMARC)"
	case a.SPF && a.DKIM:
		return "validates SPF and DKIM, but does not enforce with DMARC"
	case a.SPF && !a.SPFComplete:
		return "starts but does not finish SPF validation"
	case a.SPF:
		return "validates SPF only"
	case a.DKIM:
		return "validates DKIM only"
	case a.DMARC:
		return "checks DMARC without authenticating SPF/DKIM (non-compliant)"
	default:
		return "no sender validation observed"
	}
}

// TargetResolver maps a recipient domain to its MX targets. In a real
// deployment this performs MX/A/AAAA resolution; in simulation it
// consults the dataset.
type TargetResolver func(ctx context.Context, domain string) ([]probe.Target, error)

// Service runs assessment sessions.
type Service struct {
	// Sender delivers the test messages. Its Suffix is the
	// instrumented zone (NotifyEmail-style, LabelDepth 1).
	Sender *probe.Sender
	// Log is the authoritative server's query log for that zone.
	Log *dnsserver.QueryLog
	// Targets resolves recipient domains to MX targets.
	Targets TargetResolver
	// Settle is how long after delivery to keep watching for
	// validation activity (post-DATA validators lag; the paper saw up
	// to ~30 s). Zero means 2 s.
	Settle time.Duration
	// Subject/Body customize the test message.
	Subject string
	Body    string

	mu      sync.Mutex
	counter int
}

func (s *Service) settle() time.Duration {
	if s.Settle > 0 {
		return s.Settle
	}
	return 2 * time.Second
}

// nextSessionID mints a unique, DNS-label-safe session id.
func (s *Service) nextSessionID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counter++
	return fmt.Sprintf("st%06d", s.counter)
}

// Assess runs one session against address.
func (s *Service) Assess(ctx context.Context, address string) (*Assessment, error) {
	domain := smtp.DomainOf(address)
	if domain == "" {
		return nil, fmt.Errorf("selftest: %q is not an email address", address)
	}
	session := s.nextSessionID()
	a := &Assessment{
		SessionID:  session,
		Address:    address,
		FromDomain: s.Sender.FromDomain(session),
	}

	targets, err := s.Targets(ctx, domain)
	if err != nil {
		return nil, fmt.Errorf("selftest: resolving %s: %w", domain, err)
	}
	subject := s.Subject
	if subject == "" {
		subject = "Sender-validation self-test"
	}
	body := s.Body
	if body == "" {
		body = "This message was requested through the sender-validation " +
			"self-test tool. Your mail infrastructure's SPF, DKIM, and " +
			"DMARC validation behaviour is being assessed; no action is " +
			"required.\n"
	}

	delivery := s.Sender.Send(ctx, session, address, targets, subject, body)
	a.Delivered = delivery.Delivered
	if delivery.Err != nil {
		a.DeliveryError = delivery.Err.Error()
	}

	// Let late (post-DATA) validators act before reading the log.
	select {
	case <-time.After(s.settle()):
	case <-ctx.Done():
	}

	s.collect(a)
	a.CompletedAt = time.Now()
	return a, nil
}

// collect reads the session's validation activity off the query log.
func (s *Service) collect(a *Assessment) {
	for _, e := range s.Log.Entries() {
		if e.MTAID != a.SessionID {
			continue
		}
		a.Queries++
		switch {
		case len(e.Rest) == 0 && e.Type == dns.TypeTXT:
			a.SPF = true
		case len(e.Rest) == 1 && e.Rest[0] == "mta":
			a.SPFComplete = true
		case len(e.Rest) == 2 && e.Rest[1] == "_domainkey":
			a.DKIM = true
		case len(e.Rest) == 1 && e.Rest[0] == "_dmarc":
			a.DMARC = true
		}
	}
}

// Render prints the assessment as a text report.
func Render(a *Assessment) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sender-validation assessment for %s\n", a.Address)
	fmt.Fprintf(&sb, "  session:    %s (From domain %s)\n", a.SessionID, a.FromDomain)
	if a.Delivered {
		sb.WriteString("  delivery:   accepted\n")
	} else {
		fmt.Fprintf(&sb, "  delivery:   FAILED (%s)\n", a.DeliveryError)
	}
	check := func(b bool) string {
		if b {
			return "observed"
		}
		return "not observed"
	}
	fmt.Fprintf(&sb, "  SPF:        %s\n", check(a.SPF))
	if a.SPF {
		fmt.Fprintf(&sb, "  SPF finish: %s\n", check(a.SPFComplete))
	}
	fmt.Fprintf(&sb, "  DKIM:       %s\n", check(a.DKIM))
	fmt.Fprintf(&sb, "  DMARC:      %s\n", check(a.DMARC))
	fmt.Fprintf(&sb, "  verdict:    %s\n", a.Grade())
	return sb.String()
}
