package selftest

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"net/url"
	"strings"
	"testing"
	"time"

	"sendervalid/internal/dkim"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/mtasim"
	"sendervalid/internal/netsim"
	"sendervalid/internal/policy"
	"sendervalid/internal/probe"
)

const zone = "selftest.dns-lab.example."

// rig is a full self-test deployment against one simulated MTA.
type rig struct {
	service *Service
	mta     *mtasim.MTA
}

func newRig(t *testing.T, profile mtasim.Profile) *rig {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	keyTXT, err := dkim.FormatKeyRecord(pub)
	if err != nil {
		t.Fatal(err)
	}
	senderAddr := netip.MustParseAddr("203.0.113.40")
	cfg := &policy.NotifyEmailConfig{
		Suffix:        zone,
		SenderV4:      senderAddr,
		DKIMSelector:  "st",
		DKIMKeyRecord: keyTXT,
		Contact:       "selftest@dns-lab.example",
		TimeScale:     0.001,
	}
	log := &dnsserver.QueryLog{}
	srv := &dnsserver.Server{
		Zones: []*dnsserver.Zone{{Suffix: zone, LabelDepth: 1, Default: cfg.Responder()}},
		Log:   log,
	}
	dnsAddr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	fabric := netsim.NewFabric()
	profile.ValidUsers = append(profile.ValidUsers, "operator")
	mtaAddr := netip.MustParseAddr("198.51.100.25")
	mta := mtasim.New(mtasim.Config{
		ID: "target", Hostname: "mx.target.example",
		Addr4: mtaAddr, Profile: profile, Fabric: fabric,
		DNSAddr: dnsAddr.String(), SPFTimeout: 10 * time.Second,
	})
	if err := mta.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mta.Close)

	service := &Service{
		Sender: &probe.Sender{
			Dialer:     fabric.BoundDialer(senderAddr, netip.Addr{}),
			Suffix:     zone,
			HeloDomain: "selftest.dns-lab.example",
			Signer:     &dkim.Signer{Selector: "st", Key: priv},
			Timeout:    5 * time.Second,
		},
		Log: log,
		Targets: func(ctx context.Context, domain string) ([]probe.Target, error) {
			if domain != "target.example" {
				return nil, fmt.Errorf("unknown domain %s", domain)
			}
			return []probe.Target{{Addr4: mtaAddr}}, nil
		},
		Settle: 50 * time.Millisecond,
	}
	return &rig{service: service, mta: mta}
}

func TestAssessFullValidator(t *testing.T) {
	r := newRig(t, mtasim.Profile{
		ValidatesSPF: true, ValidatesDKIM: true, ValidatesDMARC: true,
		Phase: mtasim.AtData, AcceptAnyUser: true,
	})
	a, err := r.service.Assess(context.Background(), "operator@target.example")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Delivered {
		t.Fatalf("delivery failed: %s", a.DeliveryError)
	}
	if !a.SPF || !a.SPFComplete || !a.DKIM || !a.DMARC {
		t.Errorf("assessment: %+v", a)
	}
	if !strings.Contains(a.Grade(), "full sender validation") {
		t.Errorf("grade %q", a.Grade())
	}
	report := Render(a)
	for _, want := range []string{"SPF", "DKIM", "DMARC", "accepted", a.FromDomain} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestAssessNonValidator(t *testing.T) {
	r := newRig(t, mtasim.Profile{AcceptAnyUser: true})
	a, err := r.service.Assess(context.Background(), "operator@target.example")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Delivered || a.SPF || a.DKIM || a.DMARC {
		t.Errorf("assessment: %+v", a)
	}
	if a.Grade() != "no sender validation observed" {
		t.Errorf("grade %q", a.Grade())
	}
}

func TestAssessPostDataValidator(t *testing.T) {
	// The assessment's settle window catches post-DATA validators the
	// probe experiments miss.
	r := newRig(t, mtasim.Profile{
		ValidatesSPF: true, Phase: mtasim.PostData, AcceptAnyUser: true,
	})
	a, err := r.service.Assess(context.Background(), "operator@target.example")
	if err != nil {
		t.Fatal(err)
	}
	if !a.SPF {
		t.Errorf("post-data validator not observed: %+v", a)
	}
}

func TestAssessPartialValidator(t *testing.T) {
	r := newRig(t, mtasim.Profile{
		ValidatesSPF: true, PartialSPF: true, Phase: mtasim.AtMail, AcceptAnyUser: true,
	})
	a, err := r.service.Assess(context.Background(), "operator@target.example")
	if err != nil {
		t.Fatal(err)
	}
	if !a.SPF || a.SPFComplete {
		t.Errorf("partial validator: %+v", a)
	}
	if !strings.Contains(a.Grade(), "does not finish") {
		t.Errorf("grade %q", a.Grade())
	}
}

func TestAssessUndeliverable(t *testing.T) {
	r := newRig(t, mtasim.Profile{}) // accepts only postmaster/operator
	a, err := r.service.Assess(context.Background(), "nonexistent-user@target.example")
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered {
		t.Error("delivery to unknown user succeeded")
	}
	if a.Grade() != "undeliverable" {
		t.Errorf("grade %q", a.Grade())
	}
}

func TestAssessErrors(t *testing.T) {
	r := newRig(t, mtasim.Profile{AcceptAnyUser: true})
	if _, err := r.service.Assess(context.Background(), "not-an-address"); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := r.service.Assess(context.Background(), "x@unknown.example"); err == nil {
		t.Error("unresolvable domain accepted")
	}
}

func TestSessionIDsUnique(t *testing.T) {
	s := &Service{}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := s.nextSessionID()
		if seen[id] {
			t.Fatalf("duplicate session id %s", id)
		}
		seen[id] = true
	}
}

func TestHTTPFormFlow(t *testing.T) {
	r := newRig(t, mtasim.Profile{
		ValidatesSPF: true, ValidatesDKIM: true, ValidatesDMARC: true,
		Phase: mtasim.AtData, AcceptAnyUser: true,
	})
	h := &Handler{Service: r.service, Timeout: 30 * time.Second}
	ts := httptest.NewServer(h)
	defer ts.Close()

	// The form page.
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != 200 || !strings.Contains(body, "<form") {
		t.Fatalf("form page: %d\n%s", resp.StatusCode, body)
	}

	// A successful HTML assessment.
	resp, err = http.PostForm(ts.URL+"/assess", url.Values{"address": {"operator@target.example"}})
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	if resp.StatusCode != 200 || !strings.Contains(body, "full sender validation") {
		t.Fatalf("assess page: %d\n%s", resp.StatusCode, body)
	}

	// The JSON API.
	resp, err = http.PostForm(ts.URL+"/api/assess", url.Values{"address": {"operator@target.example"}})
	if err != nil {
		t.Fatal(err)
	}
	var a Assessment
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !a.SPF || !a.DKIM || !a.DMARC || !a.Delivered {
		t.Errorf("json assessment: %+v", a)
	}

	// Error paths.
	resp, _ = http.PostForm(ts.URL+"/assess", url.Values{"address": {"garbage"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad address status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.PostForm(ts.URL+"/assess", url.Values{"address": {"x@unknown.example"}})
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unresolvable status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestGradeCoverage(t *testing.T) {
	cases := []struct {
		a    Assessment
		want string
	}{
		{Assessment{Delivered: true, SPF: true, DKIM: true}, "does not enforce"},
		{Assessment{Delivered: true, SPF: true, SPFComplete: true}, "SPF only"},
		{Assessment{Delivered: true, DKIM: true}, "DKIM only"},
		{Assessment{Delivered: true, DMARC: true}, "non-compliant"},
	}
	for _, c := range cases {
		if got := c.a.Grade(); !strings.Contains(got, c.want) {
			t.Errorf("grade %q lacks %q", got, c.want)
		}
	}
}
